"""Payload-crypto NFs: Encrypt/Decrypt (AES-CBC class) and FastEncrypt
(ChaCha class).

Real AES is unnecessary for the reproduction (and its Python cost would be
wildly unrepresentative); what the evaluation needs is an *invertible,
key-dependent payload transformation* whose cycle cost comes from the
profile database. We use a SHA-256-based counter-mode keystream: correct
round-tripping (Encrypt→Decrypt == identity) is testable, payload bytes
genuinely change, and packet length is preserved.
"""

from __future__ import annotations

import hashlib

from repro.bess.module import Module
from repro.net.packet import Packet


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic counter-mode keystream from SHA-256."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(
            key + nonce + counter.to_bytes(8, "big")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _packet_nonce(packet: Packet) -> bytes:
    """Per-flow nonce derived from the 5-tuple (stable across enc/dec)."""
    key = packet.flow_key_bytes()
    return key if key is not None else b"non-ip"


#: Per-flow keystreams repeat across packets; cap the memo per module so a
#: many-flow run cannot grow without bound.
_STREAM_CACHE_MAX = 4096


class _XCryptBase(Module):
    """Shared XOR-keystream machinery."""

    # The payload rewrite is a pure function of (nonce, payload); the memo
    # keys on the distinct inputs seen, never on the call count.
    vector_safe = True
    default_key = b"lemur-aes-cbc-128"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        key = self.params.get("key", self.default_key)
        self.key = key.encode() if isinstance(key, str) else bytes(key)
        self._streams: dict = {}
        #: (nonce, payload) -> crypted payload memo — see :meth:`_xcrypt`.
        self._outputs: dict = {}

    def _xcrypt(self, packet: Packet) -> None:
        payload = packet.payload
        if not payload:
            return
        # Memoize the whole transformation: the XOR is a pure function of
        # (nonce, payload bytes), and flows replay identical payloads.
        out_key = (_packet_nonce(packet), payload)
        out = self._outputs.get(out_key)
        if out is None:
            length = len(payload)
            cache_key = (out_key[0], length)
            stream_int = self._streams.get(cache_key)
            if stream_int is None:
                if len(self._streams) >= _STREAM_CACHE_MAX:
                    self._streams.clear()
                stream = _keystream(self.key, cache_key[0], length)
                stream_int = int.from_bytes(stream, "big")
                self._streams[cache_key] = stream_int
            out = (int.from_bytes(payload, "big") ^ stream_int).to_bytes(
                length, "big"
            )
            if len(self._outputs) >= _STREAM_CACHE_MAX:
                self._outputs.clear()
            self._outputs[out_key] = out
        packet.payload = out


class EncryptModule(_XCryptBase):
    """128-bit AES-CBC stand-in (Table 3)."""

    nf_class = "Encrypt"

    def process(self, packet: Packet):
        self._xcrypt(packet)
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]


class DecryptModule(_XCryptBase):
    """Inverse of :class:`EncryptModule` (same keystream XOR)."""

    nf_class = "Decrypt"

    def process(self, packet: Packet):
        self._xcrypt(packet)
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]


class FastEncryptModule(_XCryptBase):
    """128-bit ChaCha stand-in (Table 3 "Fast Enc.").

    Functionally identical keystream XOR under a different default key; its
    profile (and the SmartNIC offload, §5.3) is what distinguishes it.
    """

    nf_class = "FastEncrypt"
    default_key = b"lemur-chacha-20!"

    def process(self, packet: Packet):
        self._xcrypt(packet)
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]
