"""Header-rewrite NFs: Tunnel, Detunnel, IPv4Fwd, NAT, LB."""

from __future__ import annotations

import ipaddress
from typing import Dict, List, Optional, Tuple

from repro.bess.module import Module
from repro.exceptions import DataplaneError
from repro.net.headers import ip_to_int
from repro.net.packet import Packet


class TunnelModule(Module):
    """Push a VLAN tag (Table 3). ``vid`` parameter, default 100."""

    nf_class = "Tunnel"
    vector_safe = True

    def process(self, packet: Packet):
        vid = int(self.params.get("vid", 100))
        packet.push_vlan(vid)
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]


class DetunnelModule(Module):
    """Pop the VLAN tag (no-op when untagged)."""

    nf_class = "Detunnel"
    vector_safe = True

    def process(self, packet: Packet):
        packet.pop_vlan()
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]


class IPv4FwdModule(Module):
    """Longest-prefix-match IPv4 forwarding.

    ``routes``: list of ``{'prefix': '10.0.0.0/8', 'port': 3, 'dst_mac':
    ...}``. Sets the egress port in metadata and rewrites the destination
    MAC. Packets with no route are dropped (no default route unless one is
    configured as 0.0.0.0/0).
    """

    nf_class = "IPv4Fwd"
    vector_safe = True  # LPM is pure; route table is immutable

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        routes = self.params.get("routes", [
            {"prefix": "0.0.0.0/0", "port": 1},
        ])
        if isinstance(routes, int):
            routes = [{"prefix": "0.0.0.0/0", "port": 1}]
        parsed = []
        for route in routes:
            network = ipaddress.ip_network(route["prefix"], strict=False)
            # store as (net_int, mask_int) so the per-packet LPM is two
            # integer ops instead of ipaddress object containment
            parsed.append((
                network.prefixlen,
                int(network.network_address),
                int(network.netmask),
                int(route["port"]),
                route.get("dst_mac"),
            ))
        # longest prefix first
        parsed.sort(key=lambda item: -item[0])
        self._routes = [item[1:] for item in parsed]

    def process(self, packet: Packet):
        ipv4 = packet.ipv4
        if ipv4 is None:
            packet.metadata.drop_flag = True
            return []
        address = ip_to_int(ipv4.dst)
        for net_int, mask_int, port, dst_mac in self._routes:
            if address & mask_int == net_int:
                packet.metadata.egress_port = port
                if dst_mac and packet.eth is not None:
                    packet.eth.dst = dst_mac
                    packet.commit()
                packet.metadata.processed_by.append(self.name)
                return [(0, packet)]
        packet.metadata.drop_flag = True
        return []


class NATModule(Module):
    """Carrier-grade NAT (Table 3) — stateful, non-replicable.

    Source NAT: maps (src_ip, src_port, proto) to (nat_ip, allocated
    port). The port pool wraps within ``entries`` allocations; exhaustion
    drops new flows (carrier-grade behaviour under SYN floods).
    """

    nf_class = "NAT"
    # NOT vector_safe: first-seen port allocation is call-count state.

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.nat_ip = str(self.params.get("nat_ip", "192.0.2.1"))
        self.max_entries = int(self.params.get("entries", 12000))
        self._table: Dict[Tuple[str, int, int], int] = {}
        self._reverse: Dict[int, Tuple[str, int, int]] = {}
        self._next_port = 1024

    def process(self, packet: Packet):
        five = packet.five_tuple()
        ipv4 = packet.ipv4
        l4 = packet.tcp or packet.udp
        if five is None or ipv4 is None or l4 is None:
            packet.metadata.drop_flag = True
            return []
        key = (ipv4.src, l4.src_port, ipv4.proto)
        port = self._table.get(key)
        if port is None:
            if len(self._table) >= self.max_entries:
                self.dropped_packets += 1
                packet.metadata.drop_flag = True
                return []
            port = self._allocate_port()
            if port is None:
                packet.metadata.drop_flag = True
                return []
            self._table[key] = port
            self._reverse[port] = key
        ipv4.src = self.nat_ip
        l4.src_port = port
        packet.commit()
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]

    def _allocate_port(self) -> Optional[int]:
        for _ in range(65535 - 1024):
            port = self._next_port
            self._next_port += 1
            if self._next_port > 65535:
                self._next_port = 1024
            if port not in self._reverse:
                return port
        return None

    def translate_back(self, nat_port: int) -> Optional[Tuple[str, int, int]]:
        """Reverse lookup for return traffic (used by tests)."""
        return self._reverse.get(nat_port)

    @property
    def active_entries(self) -> int:
        return len(self._table)


class LBModule(Module):
    """Layer-4 load balancer (Table 3) — stateful flow-to-backend pinning.

    ``backends``: list of destination IPs. A flow hashes to a backend on
    first sight and sticks to it (consistent per-flow mapping), mirroring
    an L4 VIP load balancer.
    """

    nf_class = "LB"
    # NOT vector_safe: per-flow backend pinning is first-seen state.

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        backends = self.params.get("backends", ["10.10.0.1", "10.10.0.2"])
        if isinstance(backends, int):
            backends = [f"10.10.0.{i + 1}" for i in range(backends)]
        if not backends:
            raise DataplaneError(f"{self.name}: LB needs at least one backend")
        self.backends: List[str] = [str(b) for b in backends]
        self._flow_map: Dict[tuple, str] = {}

    def process(self, packet: Packet):
        five = packet.five_tuple()
        ipv4 = packet.ipv4
        if five is None or ipv4 is None:
            packet.metadata.drop_flag = True
            return []
        backend = self._flow_map.get(five)
        if backend is None:
            # stable across processes (unlike built-in str hashing)
            digest = packet.flow_digest()
            backend = self.backends[digest % len(self.backends)]
            self._flow_map[five] = backend
        ipv4.dst = backend
        packet.commit()
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]

    @property
    def active_flows(self) -> int:
        return len(self._flow_map)
