"""Filtering NFs: ACL, BPF match, URL filter."""

from __future__ import annotations

import ipaddress
from typing import List, Optional, Tuple

from repro.bess.module import Module
from repro.net.headers import ip_to_int
from repro.net.packet import Packet


def _prefix_ints(prefix: str) -> Tuple[int, int]:
    """``'10.0.0.0/8'`` → ``(network_int, netmask_int)``."""
    network = ipaddress.ip_network(prefix, strict=False)
    return int(network.network_address), int(network.netmask)


class ACLModule(Module):
    """ACL on src/dst fields (Table 3).

    ``rules`` is an ordered list of dicts with optional ``src_ip``/
    ``dst_ip`` prefixes, ``src_port``/``dst_port``/``proto`` exact values,
    and a ``drop`` verdict. First match wins; the default action is
    configurable via ``default_drop`` (False, i.e. permit, by default —
    matching the paper's example rule which *permits* 10.0.0.0/8).
    """

    nf_class = "ACL"
    vector_safe = True  # pure function of the packet bytes

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        raw_rules = self.params.get("rules", [])
        if isinstance(raw_rules, int):
            raw_rules = []  # size-only spec (placement experiments)
        self.default_drop = bool(self.params.get("default_drop", False))
        # prefixes stored as (net_int, mask_int) — integer matching per
        # packet instead of ipaddress containment
        self._rules: List[Tuple[Optional[Tuple[int, int]],
                                Optional[Tuple[int, int]],
                                Optional[int], Optional[int], Optional[int],
                                bool]] = []
        for rule in raw_rules:
            self._rules.append((
                _prefix_ints(rule["src_ip"]) if rule.get("src_ip") else None,
                _prefix_ints(rule["dst_ip"]) if rule.get("dst_ip") else None,
                rule.get("src_port"),
                rule.get("dst_port"),
                rule.get("proto"),
                bool(rule.get("drop", False)),
            ))

    def process(self, packet: Packet):
        five = packet.five_tuple()
        if five is None:
            packet.metadata.drop_flag = True
            return []
        src, dst, sport, dport, proto = five
        src_int = ip_to_int(src)
        dst_int = ip_to_int(dst)
        verdict = self.default_drop
        for s_net, d_net, s_port, d_port, r_proto, drop in self._rules:
            if s_net and (src_int & s_net[1]) != s_net[0]:
                continue
            if d_net and (dst_int & d_net[1]) != d_net[0]:
                continue
            if s_port is not None and sport != s_port:
                continue
            if d_port is not None and dport != d_port:
                continue
            if r_proto is not None and proto != r_proto:
                continue
            verdict = drop
            break
        if verdict:
            packet.metadata.drop_flag = True
            return []
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]


class BPFModule(Module):
    """Flexible BPF-style classifier (Table 3 "Match").

    ``filters`` is a list of condition dicts (same fields as ACL rules plus
    ``vlan_tag``); the index of the first matching filter becomes the
    packet's traffic class (stored in metadata and used by generated
    branch-steering code). Unmatched packets get class -1 and still pass.
    """

    nf_class = "BPF"
    vector_safe = True  # classification is a pure function of the bytes

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        filters = self.params.get("filters", [])
        if isinstance(filters, int):
            filters = []
        self._filters = list(filters)

    def _matches(self, packet: Packet, cond: dict) -> bool:
        five = packet.five_tuple()
        if "vlan_tag" in cond:
            vlan = packet.vlan
            if vlan is None or vlan.vid != cond["vlan_tag"]:
                return False
        if five is None:
            return not any(
                k in cond for k in
                ("src_ip", "dst_ip", "src_port", "dst_port", "proto")
            )
        src, dst, sport, dport, proto = five
        if "src_ip" in cond:
            if ipaddress.ip_address(src) not in ipaddress.ip_network(
                cond["src_ip"], strict=False
            ):
                return False
        if "dst_ip" in cond:
            if ipaddress.ip_address(dst) not in ipaddress.ip_network(
                cond["dst_ip"], strict=False
            ):
                return False
        if cond.get("src_port") is not None and sport != cond["src_port"]:
            return False
        if cond.get("dst_port") is not None and dport != cond["dst_port"]:
            return False
        if cond.get("proto") is not None and proto != cond["proto"]:
            return False
        return True

    def process(self, packet: Packet):
        traffic_class = -1
        for index, cond in enumerate(self._filters):
            if self._matches(packet, cond):
                traffic_class = index
                break
        packet.metadata.fields["traffic_class"] = traffic_class
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]


class UrlFilterModule(Module):
    """HTML/URL payload filter (Table 3).

    Drops packets whose payload contains any blocked pattern. Patterns
    come from ``params['patterns']`` (strings or bytes); default blocks
    the literal ``"blocked.example"``.
    """

    nf_class = "UrlFilter"
    # NOT vector_safe: ``matches`` increments once per dropped packet, so
    # replaying one probe across a column would under-count it.

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        patterns = self.params.get("patterns", ["blocked.example"])
        self._patterns = [
            p.encode() if isinstance(p, str) else bytes(p) for p in patterns
        ]
        self.matches = 0

    def process(self, packet: Packet):
        payload = packet.payload
        for pattern in self._patterns:
            if pattern and pattern in payload:
                self.matches += 1
                packet.metadata.drop_flag = True
                return []
        packet.metadata.processed_by.append(self.name)
        return [(0, packet)]
