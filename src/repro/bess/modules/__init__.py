"""Functional NF module library (the C++ BESS modules of Table 3).

Every NF actually transforms packets, so tests and the testbed simulator
can validate generated routing end-to-end. Modules are grouped by family:
filtering (ACL/BPF/UrlFilter), crypto (Encrypt/Decrypt/FastEncrypt),
rewrite (Tunnel/Detunnel/IPv4Fwd/NAT/LB), and stateful accounting
(Monitor/Limiter/Dedup).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.bess.module import Module
from repro.bess.modules.filtering import ACLModule, BPFModule, UrlFilterModule
from repro.bess.modules.crypto import (
    DecryptModule,
    EncryptModule,
    FastEncryptModule,
)
from repro.bess.modules.rewrite import (
    DetunnelModule,
    IPv4FwdModule,
    LBModule,
    NATModule,
    TunnelModule,
)
from repro.bess.modules.state import (
    DedupModule,
    LimiterModule,
    MonitorModule,
)
from repro.exceptions import DataplaneError
from repro.profiles.defaults import ProfileDatabase, default_profiles

MODULE_CLASSES: Dict[str, Type[Module]] = {
    "ACL": ACLModule,
    "BPF": BPFModule,
    "UrlFilter": UrlFilterModule,
    "Encrypt": EncryptModule,
    "Decrypt": DecryptModule,
    "FastEncrypt": FastEncryptModule,
    "Tunnel": TunnelModule,
    "Detunnel": DetunnelModule,
    "IPv4Fwd": IPv4FwdModule,
    "NAT": NATModule,
    "LB": LBModule,
    "Monitor": MonitorModule,
    "Limiter": LimiterModule,
    "Dedup": DedupModule,
}


def make_nf_module(
    nf_class: str,
    params: Optional[dict] = None,
    name: Optional[str] = None,
    database: Optional[ProfileDatabase] = None,
    numa_same: bool = False,
    seed: object = 0,
) -> Module:
    """Instantiate a functional NF module by Table 3 class name."""
    cls = MODULE_CLASSES.get(nf_class)
    if cls is None:
        raise DataplaneError(
            f"no software implementation for NF {nf_class!r} "
            f"(library: {sorted(MODULE_CLASSES)})"
        )
    return cls(
        name=name or nf_class.lower(),
        params=params,
        database=database or default_profiles(),
        numa_same=numa_same,
        seed=seed,
    )


__all__ = ["MODULE_CLASSES", "make_nf_module"] + [
    cls.__name__ for cls in MODULE_CLASSES.values()
]
