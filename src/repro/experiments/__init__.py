"""Evaluation harness (§5): canonical chains, scheme registry, δ-sweep runner."""

from repro.experiments.chains import (
    canonical_chain,
    canonical_chains,
    base_rate_mbps,
    chains_with_delta,
)
from repro.experiments.schemes import SCHEMES, run_scheme
from repro.experiments.parallel import SweepCell, run_cells
from repro.experiments.runner import (
    DeltaSweepResult,
    ExperimentResult,
    SweepSpec,
    run_delta_sweep,
    run_sweep,
)

__all__ = [
    "canonical_chain",
    "canonical_chains",
    "base_rate_mbps",
    "chains_with_delta",
    "SCHEMES",
    "run_scheme",
    "DeltaSweepResult",
    "ExperimentResult",
    "SweepSpec",
    "SweepCell",
    "run_cells",
    "run_delta_sweep",
    "run_sweep",
]
