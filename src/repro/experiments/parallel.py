"""Parallel experiment execution: fan a sweep grid over a process pool.

The evaluation grid (Fig. 2/3, §5.3) is a set of *independent*
(scheme, δ) cells: each one derives its chains, solves a placement, and
optionally measures the result on the simulated testbed. This module is
the execution substrate for that shape:

* :class:`SweepCell` — one picklable cell task;
* :func:`execute_cell` — the single computation both serial and parallel
  paths share, so results are byte-identical regardless of ``jobs``;
* :func:`run_cells` — dispatches cells inline or over a
  :class:`concurrent.futures.ProcessPoolExecutor`, restores deterministic
  result ordering, and merges per-worker observability registries back
  into the parent's.

Each cell deep-copies its topology before solving, so scheme-side
mutations (failed devices, reserved cores) can never leak between cells —
in either execution mode. Placement results are memoized through
:mod:`repro.core.cache` when the cell enables it; forked workers inherit
the parent's warm cache.
"""

from __future__ import annotations

import copy
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cache import get_cache, placement_fingerprint
from repro.core.placement import Placement
from repro.hw.topology import Topology
from repro.obs import get_registry, scoped_registry
from repro.profiles.defaults import ProfileDatabase


@dataclass
class SweepCell:
    """One (scheme, δ) cell of an experiment grid, ready to execute.

    Everything a worker process needs is carried in the task (and must be
    picklable): the placement function by reference, the *base* topology
    (deep-copied before use), the profile database, and the measurement
    options.
    """

    index: int
    chain_indices: Tuple[int, ...]
    delta: float
    scheme: str
    place_fn: Callable[..., Placement]
    topology: Topology
    profiles: ProfileDatabase
    packet_bits: int
    measure: bool = True
    measure_seed: int = 23
    use_cache: bool = True


@dataclass
class CellOutcome:
    """A finished cell: its result plus execution metadata."""

    index: int
    result: "ExperimentResult"
    seconds: float
    worker: int
    metrics: Optional[dict] = None  # obs dump_state() from a pooled worker


def execute_cell(cell: SweepCell) -> "ExperimentResult":
    """Run one grid cell: derive chains, place (via cache), measure.

    This is the *only* implementation of a cell — the serial loop and the
    process pool both call it, which is what guarantees parallel runs
    reproduce serial results exactly.
    """
    from repro.experiments.chains import chains_with_delta
    from repro.experiments.runner import ExperimentResult

    registry = get_registry()
    topology = copy.deepcopy(cell.topology)
    chains = chains_with_delta(
        cell.chain_indices, cell.delta,
        profiles=cell.profiles, packet_bits=cell.packet_bits,
    )
    aggregate_tmin = sum(c.slo.t_min for c in chains)

    placement: Optional[Placement] = None
    if cell.use_cache:
        cache = get_cache()
        key = placement_fingerprint(
            chains, topology, cell.profiles, cell.scheme, cell.packet_bits,
        )
        placement = cache.get(key)
        if placement is None:
            placement = cell.place_fn(
                chains, topology, cell.profiles, packet_bits=cell.packet_bits,
            )
            cache.put(key, placement)
    else:
        placement = cell.place_fn(
            chains, topology, cell.profiles, packet_bits=cell.packet_bits,
        )

    result = ExperimentResult(
        scheme=cell.scheme,
        delta=cell.delta,
        feasible=placement.feasible,
        aggregate_tmin_mbps=aggregate_tmin,
        infeasible_reason=placement.infeasible_reason,
    )
    if placement.feasible:
        result.predicted_mbps = placement.aggregate_rate
        result.marginal_mbps = placement.objective_mbps
        if cell.measure:
            result.measured_mbps = _measure_cell(
                placement, topology, cell.profiles,
                cell.packet_bits, cell.measure_seed,
            )
        else:
            result.measured_mbps = result.predicted_mbps
    registry.counter("sweep.cells", scheme=cell.scheme,
                     feasible=str(placement.feasible).lower()).inc()
    return result


def _measure_cell(
    placement: Placement,
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int,
    seed: int,
) -> float:
    """Execute the placement on the simulated testbed (lazy import)."""
    from repro.sim.testbed import TestbedSimulator

    sim = TestbedSimulator(
        topology=topology, profiles=profiles,
        packet_bits=packet_bits, seed=seed,
    )
    report = sim.run(placement)
    return report.aggregate_throughput_mbps


def _timed_execute(cell: SweepCell) -> Tuple["ExperimentResult", float]:
    """Execute a cell and record its wall-clock into the ambient registry."""
    start = time.perf_counter()
    result = execute_cell(cell)
    seconds = time.perf_counter() - start
    get_registry().histogram(
        "sweep.cell.seconds", scheme=cell.scheme
    ).observe(seconds)
    return result, seconds


def _cell_worker(cell: SweepCell) -> CellOutcome:
    """Pool entry point: run one cell under a fresh per-worker registry.

    The worker's instrumentation (placer timings, LP solve counts, cache
    hit/miss counters, dataplane stats) lands in a scoped registry whose
    state is shipped back for the parent to merge — nothing recorded in a
    worker is lost to process isolation.
    """
    with scoped_registry() as registry:
        result, seconds = _timed_execute(cell)
        state = registry.dump_state()
    return CellOutcome(
        index=cell.index, result=result, seconds=seconds,
        worker=os.getpid(), metrics=state,
    )


def _pickling_ok(cells: Sequence[SweepCell]) -> bool:
    try:
        pickle.dumps(list(cells))
        return True
    except Exception:
        return False


def _pooled_outcomes(cells: Sequence[SweepCell],
                     jobs: int) -> List[CellOutcome]:
    """Dispatch the grid over the persistent worker pool."""
    from repro.runtime.pool import PoolCall, get_pool

    worker_pool = get_pool(jobs)
    return worker_pool.dispatch(
        [PoolCall(_cell_worker, cell) for cell in cells]
    )


def run_cells(
    cells: Sequence[SweepCell], jobs: int = 1, pool: str = "keep"
) -> List["ExperimentResult"]:
    """Execute a grid of cells, serially or over a process pool.

    Results come back in cell-index order regardless of completion order,
    and per-worker metrics are merged into the parent registry in that
    same deterministic order. ``pool="keep"`` (the default) reuses the
    process-wide persistent :class:`~repro.runtime.pool.WorkerPool`;
    ``pool="per-run"`` spawns a throwaway executor. Falls back to serial
    execution (with a warning) when the grid is not picklable — e.g.
    lambda schemes or an ad-hoc topology factory.
    """
    from repro.exceptions import WorkerPoolError
    from repro.runtime.pool import in_worker

    registry = get_registry()
    if jobs > 1 and len(cells) > 1 and not _pickling_ok(cells):
        warnings.warn(
            "sweep grid is not picklable (lambda scheme or topology "
            "factory?); falling back to serial execution",
            RuntimeWarning, stacklevel=2,
        )
        jobs = 1

    outcomes: List[CellOutcome] = []
    if jobs <= 1 or len(cells) <= 1 or in_worker():
        for cell in cells:
            result, seconds = _timed_execute(cell)
            outcomes.append(CellOutcome(
                index=cell.index, result=result,
                seconds=seconds, worker=os.getpid(),
            ))
    else:
        if pool == "keep":
            try:
                outcomes = _pooled_outcomes(cells, jobs)
            except WorkerPoolError as exc:
                warnings.warn(
                    f"persistent worker pool dispatch failed ({exc}); "
                    "falling back to a per-run pool",
                    RuntimeWarning, stacklevel=2,
                )
                outcomes = []
        if not outcomes:
            workers = min(jobs, os.cpu_count() or 1, len(cells))
            with ProcessPoolExecutor(max_workers=workers) as executor:
                futures = [
                    executor.submit(_cell_worker, cell) for cell in cells
                ]
                outcomes = [future.result() for future in futures]

    outcomes.sort(key=lambda o: o.index)
    per_worker_seconds: Dict[int, float] = {}
    for outcome in outcomes:
        if outcome.metrics is not None:
            registry.merge_state(outcome.metrics)
        per_worker_seconds[outcome.worker] = (
            per_worker_seconds.get(outcome.worker, 0.0) + outcome.seconds
        )
    for worker, seconds in sorted(per_worker_seconds.items()):
        registry.histogram(
            "sweep.worker.seconds", worker=str(worker)
        ).observe(seconds)
    registry.counter(
        "sweep.runs", mode="parallel" if jobs > 1 else "serial"
    ).inc()
    return [outcome.result for outcome in outcomes]
