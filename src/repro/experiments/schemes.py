"""Scheme registry for the evaluation (§5.1 Comparison)."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.chain.graph import NFChain
from repro.core.ablations import no_core_allocation_place, no_profiling_place
from repro.core.baselines import (
    greedy_place,
    hw_preferred_place,
    min_bounce_place,
    sw_preferred_place,
)
from repro.core.bruteforce import brute_force_place
from repro.core.heuristic import heuristic_place
from repro.core.placement import Placement
from repro.hw.topology import Topology
from repro.profiles.defaults import ProfileDatabase
from repro.units import DEFAULT_PACKET_BITS

#: Display order follows Figure 2's legend.
SCHEMES: Dict[str, Callable[..., Placement]] = {
    "Lemur": heuristic_place,
    "Optimal": brute_force_place,
    "HW Preferred": hw_preferred_place,
    "SW Preferred": sw_preferred_place,
    "Min Bounce": min_bounce_place,
    "Greedy": greedy_place,
}

ABLATIONS: Dict[str, Callable[..., Placement]] = {
    "Lemur": heuristic_place,
    "No Profiling": no_profiling_place,
    "No Core Alloc": no_core_allocation_place,
}


def run_scheme(
    name: str,
    chains: Sequence[NFChain],
    topology: Topology,
    profiles: ProfileDatabase,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> Placement:
    fn = SCHEMES.get(name) or ABLATIONS.get(name)
    if fn is None:
        raise KeyError(f"unknown scheme {name!r}")
    return fn(list(chains), topology, profiles, packet_bits=packet_bits)


def scheme_names() -> List[str]:
    return list(SCHEMES)
