"""The five canonical NF chains of Table 2.

Chains are expressed in the spec DSL and lowered through the standard
parser, so the evaluation exercises the exact front-end an operator would
use. Subchains:

* Subchain 6 = ``LB -> Limiter -> ACL``
* Subchain 7 = ``ACL -> Limiter``
* Subchain 8 = ``Detunnel -> Encrypt -> IPv4Fwd``

Chain 1's published rendering is ambiguous (see DESIGN.md): we encode a
three-way BPF split where one branch runs Subchain 7, a second BPF
classifier and UrlFilter before its Subchain 8, and the other two branches
go straight to their own Subchain 8 instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.chain.graph import NFChain, chains_from_spec
from repro.chain.slo import SLO
from repro.exceptions import SpecError
from repro.hw.topology import Topology
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.units import DEFAULT_PACKET_BITS, gbps

_SUB6 = "LB -> Limiter -> ACL"
_SUB7 = "ACL -> Limiter"
_SUB8 = "Detunnel -> Encrypt -> IPv4Fwd"

_CHAIN_SPECS: Dict[int, str] = {
    1: (
        f"chain chain1: BPF -> ["
        f"{_SUB7} -> BPF -> UrlFilter -> {_SUB8}, "
        f"{_SUB8}, "
        f"{_SUB8}"
        f"]"
    ),
    2: "chain chain2: Encrypt -> LB -> [NAT, NAT, NAT] -> IPv4Fwd",
    3: "chain chain3: Dedup -> ACL -> Limiter -> LB -> IPv4Fwd",
    4: (
        f"chain chain4: Dedup -> ACL -> Monitor -> Tunnel -> BPF -> ["
        f"{_SUB6}, {_SUB6}, {_SUB6}"
        f"] -> IPv4Fwd"
    ),
    5: "chain chain5: ACL -> UrlFilter -> FastEncrypt -> IPv4Fwd",
}


def canonical_chain(index: int, slo: Optional[SLO] = None) -> NFChain:
    """Build canonical chain 1-5 (Table 2) with an optional SLO."""
    spec = _CHAIN_SPECS.get(index)
    if spec is None:
        raise SpecError(f"no canonical chain #{index}; choose 1-5")
    chain = chains_from_spec(spec)[0]
    if slo is not None:
        chain = chain.with_slo(slo)
    return chain


def canonical_chains(indices: Sequence[int],
                     slos: Optional[Sequence[SLO]] = None) -> List[NFChain]:
    """Build several canonical chains at once."""
    out = []
    for position, index in enumerate(indices):
        slo = slos[position] if slos else None
        out.append(canonical_chain(index, slo))
    return out


def base_rate_mbps(
    chain: NFChain,
    profiles: Optional[ProfileDatabase] = None,
    freq_hz: float = 1.7e9,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> float:
    """The chain's *base rate* (§5.1 Experiment Design).

    "For each chain, we first define its base rate as the rate it would
    achieve if only one core were allocated to the slowest software NF in
    the chain." Software NFs are those with a server implementation.
    """
    profiles = profiles or default_profiles()
    worst_cycles = 0.0
    from repro.hw.platform import Platform

    for node in chain.graph.nodes.values():
        if Platform.SERVER not in node.info.platforms:
            continue
        cycles = profiles.server_cycles(node.nf_class, node.params)
        worst_cycles = max(worst_cycles, cycles)
    if worst_cycles == 0.0:
        # all-hardware chain: base rate is line rate
        return gbps(100)
    pps = freq_hz / worst_cycles
    return pps * packet_bits / 1e6


def chains_with_delta(
    indices: Sequence[int],
    delta: float,
    t_max_mbps: float = gbps(100),
    profiles: Optional[ProfileDatabase] = None,
    packet_bits: int = DEFAULT_PACKET_BITS,
) -> List[NFChain]:
    """Canonical chains with t_min = δ × base rate, t_max fixed (§5.1)."""
    profiles = profiles or default_profiles()
    chains = []
    for index in indices:
        chain = canonical_chain(index)
        base = base_rate_mbps(chain, profiles, packet_bits=packet_bits)
        chains.append(
            chain.with_slo(SLO(t_min=delta * base, t_max=t_max_mbps))
        )
    return chains


def nat_stress_chain(n_nats: int = 11) -> NFChain:
    """§5.2's extreme configuration: ``BPF -> n×NAT (branched) -> IPv4Fwd``."""
    arms = ", ".join(["NAT"] * n_nats)
    return chains_from_spec(
        f"chain natstress: BPF -> [{arms}] -> IPv4Fwd"
    )[0]
