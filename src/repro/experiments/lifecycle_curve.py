"""Admission curve for the online chain-lifecycle engine.

A seeded arrival-only timeline is replayed twice through the lifecycle
engine — once with incremental (warm-started) admission and once with
``full_resolve`` cold re-solves — and the curves are compared: how many
chains each mode admits as load grows, the aggregate throughput the rack
sustains, and the wall-clock each admission decision cost. This is the
experiment backing the claim that incremental placement makes online
admission cheap without giving up admitted load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry
from repro.sim.lifecycle import (
    ChainEvent,
    LifecycleReport,
    LifecycleSpec,
    LifecycleTimeline,
    run_lifecycle,
)
from repro.units import gbps

#: the arriving tenants draw from a fixed menu of server-heavy chains so
#: that a rack saturates within a short timeline
_ARRIVAL_MENU = (
    "Encrypt -> NAT -> IPv4Fwd",
    "Encrypt -> IPv4Fwd",
    "Dedup -> NAT -> IPv4Fwd",
    "Monitor -> Encrypt -> IPv4Fwd",
)

_BASE_SPEC = (
    "chain alpha: ACL -> Encrypt -> IPv4Fwd\n"
    "chain beta: BPF -> NAT -> IPv4Fwd\n"
)


def arrival_timeline(
    n_arrivals: int,
    seed: int = 23,
    t_min_range: Tuple[float, float] = (gbps(2), gbps(5)),
) -> LifecycleTimeline:
    """A seeded arrivals-only schedule, one tenant per tick.

    Unlike :meth:`LifecycleTimeline.random` (mixed arrive/scale/depart,
    used for fuzz-style smoke runs), this generator only grows load —
    the shape an admission curve needs.
    """
    rng = random.Random(seed)
    events: List[ChainEvent] = []
    for index in range(n_arrivals):
        name = f"dyn{index}"
        body = rng.choice(_ARRIVAL_MENU)
        t_min = round(rng.uniform(*t_min_range), 1)
        events.append(ChainEvent(
            at=index + 1, action="arrive", chain=name,
            spec=f"chain {name}: {body}",
            t_min_mbps=t_min, t_max_mbps=t_min * 2,
        ))
    return LifecycleTimeline(events=tuple(events), seed=seed)


@dataclass
class AdmissionCurvePoint:
    """The state of one mode's curve after one arrival was decided."""

    arrival_index: int
    chain: str
    accepted: bool
    cumulative_accepted: int
    aggregate_mbps: float
    reason: str = ""


@dataclass
class AdmissionCurveResult:
    """Incremental vs full-resolve admission over the same timeline."""

    incremental: List[AdmissionCurvePoint] = field(default_factory=list)
    full: List[AdmissionCurvePoint] = field(default_factory=list)

    def accepted(self, mode: str) -> int:
        points = self.incremental if mode == "incremental" else self.full
        return points[-1].cumulative_accepted if points else 0

    def print_table(self) -> str:
        lines = [
            "arrival        incremental          full-resolve",
            "               adm  agg Gbps        adm  agg Gbps",
        ]
        for inc, full in zip(self.incremental, self.full):
            lines.append(
                f"{inc.arrival_index:>3} {inc.chain:<10}"
                f"{'+' if inc.accepted else '-':>2} {inc.cumulative_accepted:>3}"
                f"  {inc.aggregate_mbps / 1000.0:>8.2f}"
                f"{'+' if full.accepted else '-':>7} {full.cumulative_accepted:>3}"
                f"  {full.aggregate_mbps / 1000.0:>8.2f}"
            )
        lines.append(
            f"admitted: incremental {self.accepted('incremental')} / "
            f"full {self.accepted('full')} of {len(self.incremental)}"
        )
        return "\n".join(lines)


def _curve_points(report: LifecycleReport) -> List[AdmissionCurvePoint]:
    points: List[AdmissionCurvePoint] = []
    cumulative = 0
    for index, decision in enumerate(report.decisions):
        if decision.accepted:
            cumulative += 1
        # phase i+1 ran after decision i (phase 0 is the initial state)
        phase = report.phases[min(index + 1, len(report.phases) - 1)]
        aggregate = sum(row.assigned_mbps for row in phase.chains)
        points.append(AdmissionCurvePoint(
            arrival_index=index + 1,
            chain=decision.chain,
            accepted=decision.accepted,
            cumulative_accepted=cumulative,
            aggregate_mbps=aggregate,
            reason=decision.reason,
        ))
    return points


def lifecycle_admission_curve(
    n_arrivals: int = 8,
    seed: int = 23,
    slos: Sequence[Tuple[float, float]] = ((gbps(1), gbps(5)),
                                           (gbps(1), gbps(5))),
    packets_per_phase: int = 32,
) -> AdmissionCurveResult:
    """Replay the same arrival timeline in both admission modes."""
    timeline = arrival_timeline(n_arrivals, seed=seed)
    spec = LifecycleSpec(
        spec_text=_BASE_SPEC,
        slos=tuple(slos),
        timeline=timeline,
        packets_per_phase=packets_per_phase,
        seed=seed,
    )
    result = AdmissionCurveResult()
    incremental = run_lifecycle(spec, registry=MetricsRegistry())
    result.incremental = _curve_points(incremental)
    full = run_lifecycle(
        replace(spec, full_resolve=True), registry=MetricsRegistry()
    )
    result.full = _curve_points(full)
    return result
