"""Row/series printers matching the paper's tables and figures (§5).

Each function regenerates one artifact's data series and returns both a
structured record and a printable table, so the benchmark harness can
assert on shapes and a human can eyeball the rows against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chain.slo import SLO
from repro.experiments.chains import (
    canonical_chain,
    base_rate_mbps,
    chains_with_delta,
    nat_stress_chain,
)
from repro.experiments.runner import (
    DeltaSweepResult,
    SweepSpec,
    run_delta_sweep,
    run_sweep,
)
from repro.experiments.schemes import ABLATIONS, SCHEMES
from repro.hw.spec import topology_for
from repro.hw.topology import Topology
from repro.profiles.defaults import ProfileDatabase, default_profiles
from repro.profiles.profiler import Profiler
from repro.units import DEFAULT_PACKET_BITS, gbps, mbps_to_gbps


def figure2_panel(
    chain_indices: Sequence[int],
    deltas: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
    topology_factory: Optional[Callable[[], Topology]] = None,
    measure: bool = True,
    jobs: int = 1,
    cache: bool = True,
) -> DeltaSweepResult:
    """One Figure 2(a-e) panel: all six schemes over the δ sweep."""
    return run_sweep(SweepSpec(
        chain_indices=chain_indices,
        deltas=deltas,
        schemes=SCHEMES,
        topology_factory=topology_factory,
        measure=measure,
        jobs=jobs,
        cache=cache,
    ))


def figure2f_ablations(
    chain_indices: Sequence[int] = (1, 2, 3, 4),
    deltas: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    measure: bool = True,
    jobs: int = 1,
    cache: bool = True,
) -> DeltaSweepResult:
    """Figure 2f: Lemur vs No-Profiling vs No-Core-Allocation."""
    return run_sweep(SweepSpec(
        chain_indices=chain_indices, deltas=deltas, schemes=ABLATIONS,
        measure=measure, jobs=jobs, cache=cache,
    ))


@dataclass
class MultiServerResult:
    """Figure 3a record: one vs two 8-core servers, chains {1,2,3}."""

    rows: List[Tuple[int, float, bool, float]] = field(default_factory=list)
    # (num_servers, delta, feasible, aggregate_mbps)

    def aggregate(self, num_servers: int, delta: float) -> Optional[float]:
        for servers, d, feasible, agg in self.rows:
            if servers == num_servers and d == delta:
                return agg if feasible else None
        return None

    def print_table(self) -> str:
        lines = ["Fig 3a: chains {1,2,3} on 1 vs 2 eight-core servers"]
        for servers, delta, feasible, agg in self.rows:
            value = f"{mbps_to_gbps(agg):6.2f}G" if feasible else "INFEASIBLE"
            lines.append(f"  servers={servers} δ={delta}: {value}")
        return "\n".join(lines)


def figure3a_multiserver(
    deltas: Sequence[float] = (0.5, 1.0, 1.5),
    chain_indices: Sequence[int] = (1, 2, 3),
    profiles: Optional[ProfileDatabase] = None,
) -> MultiServerResult:
    """Figure 3a: Lemur placing chains {1,2,3} on one vs two servers."""
    from repro.core.heuristic import heuristic_place

    profiles = profiles or default_profiles()
    result = MultiServerResult()
    for num_servers in (1, 2):
        for delta in deltas:
            topology = topology_for("multi-server",
                                    servers=num_servers).build()
            chains = chains_with_delta(chain_indices, delta,
                                       profiles=profiles)
            placement = heuristic_place(chains, topology, profiles)
            result.rows.append((
                num_servers, delta, placement.feasible,
                placement.aggregate_rate,
            ))
    return result


@dataclass
class SmartNICResult:
    """Figure 3b record: chain 5 with and without the SmartNIC."""

    rows: List[Tuple[bool, float, bool, float]] = field(default_factory=list)
    # (with_nic, delta, feasible, aggregate_mbps)

    def aggregate(self, with_nic: bool, delta: float) -> Optional[float]:
        for nic, d, feasible, agg in self.rows:
            if nic == with_nic and d == delta:
                return agg if feasible else None
        return None

    def print_table(self) -> str:
        lines = ["Fig 3b: chain 5 (ChaCha) with/without the 40G SmartNIC"]
        for nic, delta, feasible, agg in self.rows:
            label = "smartnic" if nic else "server-only"
            value = f"{mbps_to_gbps(agg):6.2f}G" if feasible else "INFEASIBLE"
            lines.append(f"  {label:<12} δ={delta}: {value}")
        return "\n".join(lines)


def figure3b_smartnic(
    deltas: Sequence[float] = (0.5, 1.0, 1.5),
    profiles: Optional[ProfileDatabase] = None,
) -> SmartNICResult:
    """Figure 3b: Lemur offloading ChaCha to the Netronome NIC."""
    from repro.core.heuristic import heuristic_place

    profiles = profiles or default_profiles()
    result = SmartNICResult()
    for with_nic in (False, True):
        for delta in deltas:
            topology = topology_for(
                "paper-smartnic" if with_nic else "paper-testbed"
            ).build()
            chain = canonical_chain(5)
            base = base_rate_mbps(chain, profiles)
            chains = [chain.with_slo(SLO(t_min=delta * base,
                                         t_max=gbps(100)))]
            placement = heuristic_place(chains, topology, profiles)
            result.rows.append((
                with_nic, delta, placement.feasible,
                placement.aggregate_rate,
            ))
    return result


@dataclass
class OpenFlowResult:
    """Figure 3c record: chain 3's ACL on the OF switch vs on a server."""

    offloaded_mbps: float = 0.0
    server_mbps: float = 0.0

    @property
    def speedup(self) -> float:
        return (self.offloaded_mbps / self.server_mbps
                if self.server_mbps else 0.0)

    def print_table(self) -> str:
        return (
            "Fig 3c: chain 3 ACL offload to the OpenFlow switch\n"
            f"  ACL on OF switch : {self.offloaded_mbps:8.0f} Mbps\n"
            f"  ACL on server    : {self.server_mbps:8.0f} Mbps\n"
            f"  speedup          : {self.speedup:8.1f}x"
        )


def figure3c_openflow(
    profiles: Optional[ProfileDatabase] = None,
) -> OpenFlowResult:
    """Figure 3c: OF-accelerated ACL vs stitching it via the server.

    The paper measures a sub-chain rate of 7710 Mbps with the OF switch
    executing ACL vs 693 Mbps through a single commodity-server core; we
    reproduce the shape with a one-core budget for the sub-chain.
    """
    from repro.chain.graph import chains_from_spec
    from repro.chain.vocabulary import default_vocabulary
    from repro.core.pipeline import build_placement
    from repro.core.patterns import preferred_assignment
    from repro.hw.server import Server, CPUSocket, NIC
    from repro.hw.openflow import OpenFlowSwitchModel

    profiles = profiles or default_profiles()
    result = OpenFlowResult()
    # The OF experiment lifts the artificial IPv4Fwd P4-only restriction
    # (there is no PISA switch in this topology) and, like the paper's
    # 693 Mbps single-core figure, drives small packets.
    vocabulary = default_vocabulary().unrestricted()
    packet_bits = 256 * 8
    # the OF-offloadable sub-chain of chain 3 (fixed table order: acl, l3)
    spec = "chain sub3: ACL -> IPv4Fwd"
    for offload in (True, False):
        server = Server(
            name="server0",
            sockets=[CPUSocket(0, cores=3, freq_hz=1.7e9)],
            nics=[NIC(name="nic0", rate_mbps=gbps(10))],
            reserved_cores=1,
        )
        topology = Topology(
            switch=OpenFlowSwitchModel(name="of0", port_rate_mbps=gbps(10)),
            servers=[server],
        )
        chains = chains_from_spec(spec, slos=[SLO(t_min=0.0)],
                                  vocabulary=vocabulary)
        prefer = "hw" if offload else "sw"
        assignments = [preferred_assignment(chains[0], topology, prefer)]
        placement = build_placement(
            chains, assignments, topology, profiles,
            packet_bits=packet_bits,
            core_policy="none", strategy="of-experiment",
        )
        aggregate = placement.aggregate_rate if placement.feasible else 0.0
        if offload:
            result.offloaded_mbps = aggregate
        else:
            result.server_mbps = aggregate
    return result


def table4_rows(runs: int = 500) -> List[str]:
    """Table 4: profiled NF costs over 500 runs, NUMA same/diff."""
    profiler = Profiler()
    lines = [f"{'NF':<22} {'NUMA':<5} {'Mean':>7} {'Min':>7} {'Max':>7}"]
    for stats in profiler.table4(runs=runs):
        label = stats.nf_class
        if stats.nf_class == "ACL":
            label = "ACL (1024 rules)"
        if stats.nf_class == "NAT":
            label = "NAT (12000 entries)"
        lines.append(
            f"{label:<22} {stats.numa:<5} {stats.mean:7.0f} "
            f"{stats.min:7.0f} {stats.max:7.0f}"
        )
    return lines


@dataclass
class StageExperimentResult:
    """§5.2 extreme-configuration record (the 10-vs-11 NAT narrative)."""

    all_switch_11_fits: bool = False
    lemur_feasible: bool = False
    lemur_nats_on_switch: int = 0
    compiler_stages_10: int = 0
    conservative_stages_10: int = 0
    naive_stages_10: int = 0

    def print_table(self) -> str:
        return (
            "§5.2 stage-constraint experiment (BPF -> 11xNAT -> IPv4Fwd)\n"
            f"  all-11-NATs-on-switch fits    : {self.all_switch_11_fits}\n"
            f"  Lemur feasible                : {self.lemur_feasible} "
            f"({self.lemur_nats_on_switch} NATs on switch)\n"
            f"  10-NAT stages (compiler)      : {self.compiler_stages_10}\n"
            f"  10-NAT stages (conservative)  : {self.conservative_stages_10}\n"
            f"  10-NAT stages (naive codegen) : {self.naive_stages_10}"
        )


def stage_constraint_experiment(
    profiles: Optional[ProfileDatabase] = None,
) -> StageExperimentResult:
    """Reproduce the 10-vs-11 NAT switch-stage pressure experiment."""
    from repro.core.heuristic import heuristic_place
    from repro.core.placement import Placement
    from repro.hw.platform import Platform
    from repro.p4c.compiler import PISACompiler

    profiles = profiles or default_profiles()
    result = StageExperimentResult()
    compiler = PISACompiler()

    chain11 = nat_stress_chain(11)
    all_ids = set(chain11.graph.nodes)
    result.all_switch_11_fits = compiler.compile(
        [(chain11.graph, all_ids)]
    ).fits

    chain10 = nat_stress_chain(10)
    ids10 = set(chain10.graph.nodes)
    result.compiler_stages_10 = compiler.compile(
        [(chain10.graph, ids10)]
    ).stage_count
    result.conservative_stages_10 = compiler.compile(
        [(chain10.graph, ids10)], strategy="conservative"
    ).stage_count
    result.naive_stages_10 = compiler.compile(
        [(chain10.graph, ids10)], strategy="naive"
    ).stage_count

    base = base_rate_mbps(chain11, profiles)
    chains = [chain11.with_slo(SLO(t_min=0.5 * base, t_max=gbps(100)))]
    placement = heuristic_place(
        chains, topology_for("paper-testbed").build(), profiles)
    result.lemur_feasible = placement.feasible
    if placement.feasible:
        cp = placement.chains[0]
        result.lemur_nats_on_switch = sum(
            1 for nid, a in cp.assignment.items()
            if a.platform is Platform.PISA
            and cp.chain.graph.nodes[nid].nf_class == "NAT"
        )
    return result
