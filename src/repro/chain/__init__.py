"""NF chain specification language and graph IR (§2 of the paper).

Operators describe NF chains in a BESS-inspired dataflow DSL; this package
lexes/parses that DSL into an AST, validates NF names against the (extensible)
vocabulary of Table 3, and lowers the AST into the *NF-graph* intermediate
representation the Placer and meta-compiler consume (§4).
"""

from repro.chain.vocabulary import (
    NFInfo,
    Vocabulary,
    default_vocabulary,
)
from repro.chain.slo import SLO, SLOUseCase, classify_slo
from repro.chain.ast import (
    BranchSpec,
    ChainSpecAST,
    NFInvocation,
    PipelineSpec,
)
from repro.chain.lexer import Lexer, Token, TokenType
from repro.chain.parser import parse_spec
from repro.chain.graph import (
    LinearChain,
    NFChain,
    NFEdge,
    NFGraph,
    NFNode,
    chains_from_spec,
)
from repro.chain.render import render_chain, render_graph, render_spec

__all__ = [
    "NFInfo",
    "Vocabulary",
    "default_vocabulary",
    "SLO",
    "SLOUseCase",
    "classify_slo",
    "ChainSpecAST",
    "NFInvocation",
    "BranchSpec",
    "PipelineSpec",
    "Lexer",
    "Token",
    "TokenType",
    "parse_spec",
    "NFGraph",
    "NFNode",
    "NFEdge",
    "LinearChain",
    "NFChain",
    "chains_from_spec",
    "render_chain",
    "render_graph",
    "render_spec",
]
