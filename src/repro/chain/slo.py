"""SLO model (§2, Table 1).

For each traffic aggregate the operator specifies a minimum throughput
``t_min``, a maximum throughput ``t_max`` (burst cap), and a maximum delay
``d_max``. Pricing is fixed for ``t_min`` and usage-based above it, which is
why the Placer maximizes aggregate *marginal* throughput (rate above t_min).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.units import gbps

#: Stand-in for "unbounded" rates/delays (Table 1's infinity column).
UNBOUNDED = math.inf


class SLOUseCase(enum.Enum):
    """Table 1's operator use cases."""

    BULK = "bulk"
    METERED_BULK = "metered bulk"
    VIRTUAL_PIPE = "virtual pipe"
    ELASTIC_PIPE = "elastic pipe"
    INFINITE_PIPE = "infinite pipe"


@dataclass(frozen=True)
class SLO:
    """An SLO: min rate, burst cap, delay bound (all per traffic aggregate).

    Rates in Mbps, delay in microseconds. ``t_max`` and ``d_max`` default to
    unbounded.
    """

    t_min: float = 0.0
    t_max: float = UNBOUNDED
    d_max: float = UNBOUNDED

    def __post_init__(self) -> None:
        if self.t_min < 0:
            raise ValueError(f"t_min must be non-negative, got {self.t_min}")
        if self.t_max < self.t_min:
            raise ValueError(
                f"t_max ({self.t_max}) must be >= t_min ({self.t_min})"
            )
        if self.d_max <= 0:
            raise ValueError(f"d_max must be positive, got {self.d_max}")

    @property
    def use_case(self) -> SLOUseCase:
        return classify_slo(self)

    def with_tmin(self, t_min: float) -> "SLO":
        """Copy with a new minimum rate (used by the δ sweep)."""
        return SLO(t_min=t_min, t_max=max(self.t_max, t_min), d_max=self.d_max)

    def marginal(self, achieved_mbps: float) -> float:
        """Marginal throughput of an achieved rate under this SLO."""
        return max(0.0, achieved_mbps - self.t_min)

    def satisfied_by(self, rate_mbps: float, delay_us: Optional[float] = None) -> bool:
        """Does an (estimated rate, delay) pair satisfy this SLO?"""
        if rate_mbps + 1e-9 < self.t_min:
            return False
        if delay_us is not None and self.d_max is not UNBOUNDED:
            if delay_us > self.d_max + 1e-12:
                return False
        return True


def classify_slo(slo: SLO) -> SLOUseCase:
    """Map an SLO to Table 1's use-case vocabulary.

    >>> classify_slo(SLO(t_min=0, t_max=UNBOUNDED)) is SLOUseCase.BULK
    True
    >>> classify_slo(SLO(t_min=gbps(1), t_max=gbps(1))) is SLOUseCase.VIRTUAL_PIPE
    True
    """
    bounded_max = slo.t_max is not UNBOUNDED and not math.isinf(slo.t_max)
    if slo.t_min == 0:
        return SLOUseCase.METERED_BULK if bounded_max else SLOUseCase.BULK
    if not bounded_max:
        return SLOUseCase.INFINITE_PIPE
    if slo.t_max == slo.t_min:
        return SLOUseCase.VIRTUAL_PIPE
    return SLOUseCase.ELASTIC_PIPE


def bulk() -> SLO:
    """Best effort (Table 1)."""
    return SLO()


def metered_bulk(alpha_mbps: float) -> SLO:
    """Best effort capped at alpha."""
    return SLO(t_min=0.0, t_max=alpha_mbps)


def virtual_pipe(alpha_mbps: float) -> SLO:
    """Exactly alpha guaranteed."""
    return SLO(t_min=alpha_mbps, t_max=alpha_mbps)


def elastic_pipe(alpha_mbps: float, beta_mbps: float) -> SLO:
    """At least alpha, bursts up to beta."""
    return SLO(t_min=alpha_mbps, t_max=beta_mbps)


def infinite_pipe(alpha_mbps: float) -> SLO:
    """At least alpha, unbounded bursts."""
    return SLO(t_min=alpha_mbps)
