"""Recursive-descent parser for the chain-spec DSL (§2, §A.1.1).

Grammar (informal)::

    spec        := statement (NEWLINE statement)*
    statement   := macro_def | instance_def | pipeline
    macro_def   := '$' IDENT '=' literal
    instance_def:= IDENT '=' IDENT '(' kwargs? ')'
    pipeline    := ('chain' IDENT ':')? element ('->' element)*
    element     := nf | branch
    nf          := IDENT ('(' kwargs? ')')?
    branch      := '[' arm (',' arm)* ']'
    arm         := 'default' ':' armbody
                 | dict ':' armbody
                 | dict_with_nf          # paper-style {'vlan_tag':1, Encrypt}
                 | armbody               # unconditional arm
    armbody     := ('pass' | element ('->' element)*) ('@' NUMBER)?
    literal     := STRING | NUMBER | 'True' | 'False' | 'None'
                 | dict | list | '$' IDENT

Instance definitions mirror BESS's module-instance naming (§A.1.1: "users can
define an 'ACL0' instance that uses ACL module class"); macros support
argument reuse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chain.ast import (
    BranchArm,
    BranchSpec,
    ChainSpecAST,
    NFInvocation,
    PipelineSpec,
)
from repro.chain.lexer import Lexer, Token, TokenType
from repro.exceptions import SpecSyntaxError


def parse_spec(text: str) -> ChainSpecAST:
    """Parse a chain-spec string into an AST."""
    return _Parser(Lexer(text).tokens()).parse()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0
        self.ast = ChainSpecAST()

    # -- token plumbing ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise SpecSyntaxError(
                f"expected {token_type.value!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._peek().type is TokenType.NEWLINE:
            self._advance()

    # -- grammar -----------------------------------------------------------

    def parse(self) -> ChainSpecAST:
        self._skip_newlines()
        while self._peek().type is not TokenType.EOF:
            self._statement()
            self._skip_newlines()
        return self.ast

    def _statement(self) -> None:
        token = self._peek()
        if token.type is TokenType.DOLLAR:
            self._macro_def()
            return
        if (
            token.type is TokenType.IDENT
            and token.value == "chain"
            and self._peek(1).type is TokenType.IDENT
            and self._peek(2).type is TokenType.COLON
        ):
            self._advance()  # 'chain'
            name = str(self._advance().value)
            self._advance()  # ':'
            pipeline = self._pipeline()
            self.ast.pipelines.append(pipeline)
            self.ast.pipeline_names.append(name)
            return
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.ASSIGN
        ):
            self._instance_def()
            return
        pipeline = self._pipeline()
        self.ast.pipelines.append(pipeline)
        self.ast.pipeline_names.append(None)

    def _macro_def(self) -> None:
        self._expect(TokenType.DOLLAR)
        name = str(self._expect(TokenType.IDENT).value)
        self._expect(TokenType.ASSIGN)
        self.ast.macros[name] = self._literal()

    def _instance_def(self) -> None:
        instance = str(self._expect(TokenType.IDENT).value)
        self._expect(TokenType.ASSIGN)
        nf_class_token = self._expect(TokenType.IDENT)
        params: Dict[str, object] = {}
        if self._peek().type is TokenType.LPAREN:
            params = self._kwargs()
        if instance in self.ast.instances:
            raise SpecSyntaxError(
                f"duplicate instance name {instance!r}",
                nf_class_token.line,
                nf_class_token.column,
            )
        self.ast.instances[instance] = NFInvocation(
            nf_class=str(nf_class_token.value),
            instance_name=instance,
            params=params,
        )

    def _pipeline(self) -> PipelineSpec:
        pipeline = PipelineSpec()
        pipeline.items.append(self._element())
        while self._peek().type is TokenType.ARROW:
            self._advance()
            pipeline.items.append(self._element())
        return pipeline

    def _element(self):
        token = self._peek()
        if token.type is TokenType.LBRACKET:
            return self._branch()
        if token.type is TokenType.IDENT:
            return self._nf_invocation()
        raise SpecSyntaxError(
            f"expected an NF or branch block, found {token.value!r}",
            token.line,
            token.column,
        )

    def _nf_invocation(self) -> NFInvocation:
        name_token = self._expect(TokenType.IDENT)
        name = str(name_token.value)
        params: Dict[str, object] = {}
        if self._peek().type is TokenType.LPAREN:
            params = self._kwargs()
        declared = self.ast.instances.get(name)
        if declared is not None:
            if params:
                raise SpecSyntaxError(
                    f"instance {name!r} cannot take parameters at use site",
                    name_token.line,
                    name_token.column,
                )
            return NFInvocation(
                nf_class=declared.nf_class,
                instance_name=name,
                params=dict(declared.params),
            )
        return NFInvocation(nf_class=name, params=params)

    def _branch(self) -> BranchSpec:
        self._expect(TokenType.LBRACKET)
        branch = BranchSpec()
        while True:
            branch.arms.append(self._arm())
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RBRACKET)
        if not branch.arms:
            token = self._peek()
            raise SpecSyntaxError("empty branch block", token.line, token.column)
        # Paper semantics: `ACL -> [{'vlan_tag': 0x1, Encrypt}] -> Fwd`
        # encrypts matching packets; everything else skips straight to Fwd.
        # A branch whose arms are all conditional gets an implicit
        # passthrough default arm.
        if all(arm.condition is not None for arm in branch.arms):
            branch.arms.append(BranchArm(pipeline=PipelineSpec(), condition=None))
        return branch

    def _arm(self) -> BranchArm:
        token = self._peek()
        condition: Optional[Dict[str, object]] = None
        if token.type is TokenType.IDENT and token.value == "default":
            self._advance()
            self._expect(TokenType.COLON)
        elif token.type is TokenType.LBRACE:
            condition, paper_style_nf = self._condition_dict()
            if paper_style_nf is not None:
                # paper style: [{'vlan_tag': 0x1, Encryption}]
                pipeline = PipelineSpec(items=[paper_style_nf])
                return BranchArm(pipeline=pipeline, condition=condition)
            self._expect(TokenType.COLON)
        pipeline, weight = self._arm_body()
        return BranchArm(pipeline=pipeline, condition=condition, weight=weight)

    def _arm_body(self) -> Tuple[PipelineSpec, Optional[float]]:
        token = self._peek()
        if token.type is TokenType.IDENT and token.value == "pass":
            self._advance()
            pipeline = PipelineSpec()  # passthrough arm
        else:
            pipeline = PipelineSpec(items=[self._element()])
            while self._peek().type is TokenType.ARROW:
                self._advance()
                pipeline.items.append(self._element())
        weight: Optional[float] = None
        if self._peek().type is TokenType.AT:
            self._advance()
            weight_token = self._expect(TokenType.NUMBER)
            weight = float(weight_token.value)
            if not 0.0 < weight <= 1.0:
                raise SpecSyntaxError(
                    f"arm weight must be in (0, 1], got {weight}",
                    weight_token.line,
                    weight_token.column,
                )
        return pipeline, weight

    def _condition_dict(self):
        """Parse ``{...}``; returns (dict, trailing_nf_or_None).

        Supports the paper's shorthand where the NF to run rides inside the
        dict: ``{'vlan_tag': 0x1, Encryption}``.
        """
        self._expect(TokenType.LBRACE)
        condition: Dict[str, object] = {}
        trailing_nf: Optional[NFInvocation] = None
        while self._peek().type is not TokenType.RBRACE:
            token = self._peek()
            if token.type is TokenType.IDENT:
                # paper-style trailing NF name inside the dict
                trailing_nf = self._nf_invocation()
                break
            key_token = self._expect(TokenType.STRING)
            self._expect(TokenType.COLON)
            condition[str(key_token.value)] = self._literal()
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RBRACE)
        return condition, trailing_nf

    def _kwargs(self) -> Dict[str, object]:
        self._expect(TokenType.LPAREN)
        params: Dict[str, object] = {}
        while self._peek().type is not TokenType.RPAREN:
            key = str(self._expect(TokenType.IDENT).value)
            self._expect(TokenType.ASSIGN)
            params[key] = self._literal()
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RPAREN)
        return params

    def _literal(self):
        token = self._peek()
        if token.type is TokenType.STRING or token.type is TokenType.NUMBER:
            return self._advance().value
        if token.type is TokenType.IDENT:
            keyword_map = {"True": True, "False": False, "None": None}
            if token.value in keyword_map:
                self._advance()
                return keyword_map[str(token.value)]
            raise SpecSyntaxError(
                f"unexpected identifier {token.value!r} in literal",
                token.line,
                token.column,
            )
        if token.type is TokenType.DOLLAR:
            self._advance()
            name_token = self._expect(TokenType.IDENT)
            name = str(name_token.value)
            if name not in self.ast.macros:
                raise SpecSyntaxError(
                    f"undefined macro ${name}", name_token.line, name_token.column
                )
            return self.ast.macros[name]
        if token.type is TokenType.LBRACKET:
            return self._list_literal()
        if token.type is TokenType.LBRACE:
            return self._dict_literal()
        raise SpecSyntaxError(
            f"expected a literal, found {token.value!r}", token.line, token.column
        )

    def _list_literal(self) -> List[object]:
        self._expect(TokenType.LBRACKET)
        items: List[object] = []
        while self._peek().type is not TokenType.RBRACKET:
            items.append(self._literal())
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RBRACKET)
        return items

    def _dict_literal(self) -> Dict[str, object]:
        self._expect(TokenType.LBRACE)
        out: Dict[str, object] = {}
        while self._peek().type is not TokenType.RBRACE:
            key = str(self._expect(TokenType.STRING).value)
            self._expect(TokenType.COLON)
            out[key] = self._literal()
            if self._peek().type is TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RBRACE)
        return out
