"""NF-graph intermediate representation (§4).

The meta-compiler "parses the NF chain specifications, and develops an
intermediate graph representation of all the NFs. In this NF-graph, nodes are
NFs, links represent data-flows, and each node is associated with attributes
that govern placement". This module lowers the AST into that IR, validates it
against the NF vocabulary, and supports the branch decomposition the Placer
uses ("we decompose such chains into linear chains", §3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.chain.ast import (
    BranchSpec,
    ChainSpecAST,
    NFInvocation,
    PipelineSpec,
)
from repro.chain.slo import SLO
from repro.chain.vocabulary import NFInfo, Vocabulary, default_vocabulary
from repro.exceptions import GraphError
from repro.net.flows import TrafficAggregate


@dataclass
class NFNode:
    """A node in the NF-graph: one NF instance."""

    node_id: str
    nf_class: str
    info: NFInfo
    instance_name: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def display_name(self) -> str:
        return self.instance_name or f"{self.nf_class}:{self.node_id}"

    def __hash__(self) -> int:
        return hash(self.node_id)


@dataclass
class NFEdge:
    """A data-flow edge. ``condition`` holds the branch-arm match dict;
    ``fraction`` is the share of the source node's traffic taking this edge."""

    src: str
    dst: str
    condition: Optional[Dict[str, object]] = None
    fraction: float = 1.0


@dataclass
class LinearChain:
    """One source→sink path through the graph with its traffic fraction.

    The Placer enumerates placements over these (§3.2 "Dealing with branches
    in chains"); throughput estimates are later merged at shared nodes.
    """

    node_ids: List[str]
    fraction: float = 1.0


class NFGraph:
    """A validated NF DAG for a single chain."""

    def __init__(self, name: str = "chain"):
        self.name = name
        self.nodes: Dict[str, NFNode] = {}
        self.edges: List[NFEdge] = []
        self._next_id = itertools.count()

    # -- construction -------------------------------------------------------

    def add_node(self, invocation: NFInvocation, vocabulary: Vocabulary) -> NFNode:
        info = vocabulary.lookup(invocation.nf_class)
        node_id = f"{self.name}.n{next(self._next_id)}"
        node = NFNode(
            node_id=node_id,
            nf_class=info.name,
            info=info,
            instance_name=invocation.instance_name,
            params=dict(invocation.params),
        )
        self.nodes[node_id] = node
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        condition: Optional[Dict[str, object]] = None,
        fraction: float = 1.0,
    ) -> NFEdge:
        if src not in self.nodes or dst not in self.nodes:
            raise GraphError(f"edge references unknown node: {src} -> {dst}")
        edge = NFEdge(src=src, dst=dst, condition=condition, fraction=fraction)
        self.edges.append(edge)
        return edge

    @classmethod
    def from_pipeline(
        cls,
        pipeline: PipelineSpec,
        name: str = "chain",
        vocabulary: Optional[Vocabulary] = None,
    ) -> "NFGraph":
        """Lower one AST pipeline into an NF-graph."""
        vocabulary = vocabulary or default_vocabulary()
        graph = cls(name=name)
        # frontier: dangling outputs awaiting the next element:
        # (node_id, condition, fraction)
        frontier: List[Tuple[str, Optional[dict], float]] = []
        for item in pipeline.items:
            if isinstance(item, NFInvocation):
                node = graph.add_node(item, vocabulary)
                for src, condition, fraction in frontier:
                    graph.add_edge(src, node.node_id, condition, fraction)
                frontier = [(node.node_id, None, 1.0)]
            elif isinstance(item, BranchSpec):
                if not frontier:
                    raise GraphError(
                        f"{name}: a chain cannot start with a branch block"
                    )
                frontier = graph._lower_branch(item, frontier, vocabulary)
            else:  # pragma: no cover - parser guarantees the item types
                raise GraphError(f"unknown pipeline item {item!r}")
        graph.validate()
        return graph

    def _lower_branch(
        self,
        branch: BranchSpec,
        frontier: List[Tuple[str, Optional[dict], float]],
        vocabulary: Vocabulary,
    ) -> List[Tuple[str, Optional[dict], float]]:
        """Lower a branch block; returns the new frontier."""
        weights = _arm_weights(branch)
        new_frontier: List[Tuple[str, Optional[dict], float]] = []
        for arm, weight in zip(branch.arms, weights):
            if not arm.pipeline.items:
                # passthrough arm: incoming traffic skips to the next element
                for src, upstream_cond, upstream_frac in frontier:
                    condition = arm.condition or upstream_cond
                    new_frontier.append((src, condition, upstream_frac * weight))
                continue
            arm_entry_pending = list(frontier)
            arm_tail: List[Tuple[str, Optional[dict], float]] = []
            for index, item in enumerate(arm.pipeline.items):
                if isinstance(item, NFInvocation):
                    node = self.add_node(item, vocabulary)
                    if index == 0:
                        for src, upstream_cond, upstream_frac in arm_entry_pending:
                            condition = arm.condition or upstream_cond
                            self.add_edge(
                                src, node.node_id, condition, upstream_frac * weight
                            )
                    else:
                        for src, condition, fraction in arm_tail:
                            self.add_edge(src, node.node_id, condition, fraction)
                    arm_tail = [(node.node_id, None, 1.0)]
                elif isinstance(item, BranchSpec):
                    if index == 0:
                        raise GraphError(
                            f"{self.name}: branch arm cannot begin with a nested branch"
                        )
                    arm_tail = self._lower_branch(item, arm_tail, vocabulary)
                else:  # pragma: no cover
                    raise GraphError(f"unknown pipeline item {item!r}")
            new_frontier.extend(arm_tail)
        return new_frontier

    # -- structure queries ---------------------------------------------------

    def successors(self, node_id: str) -> List[str]:
        return [e.dst for e in self.edges if e.src == node_id]

    def predecessors(self, node_id: str) -> List[str]:
        return [e.src for e in self.edges if e.dst == node_id]

    def out_edges(self, node_id: str) -> List[NFEdge]:
        return [e for e in self.edges if e.src == node_id]

    def in_edges(self, node_id: str) -> List[NFEdge]:
        return [e for e in self.edges if e.dst == node_id]

    def entry_nodes(self) -> List[str]:
        targets = {e.dst for e in self.edges}
        return [nid for nid in self.nodes if nid not in targets]

    def exit_nodes(self) -> List[str]:
        sources = {e.src for e in self.edges}
        return [nid for nid in self.nodes if nid not in sources]

    def branch_nodes(self) -> List[str]:
        """Nodes with >1 successor (traffic splits after them)."""
        return [nid for nid in self.nodes if len(self.successors(nid)) > 1]

    def merge_nodes(self) -> List[str]:
        """Nodes with >1 predecessor (branches rejoin at them)."""
        return [nid for nid in self.nodes if len(self.predecessors(nid)) > 1]

    def is_branch_or_merge(self, node_id: str) -> bool:
        """Subgroups containing such nodes are never replicated (§3.2)."""
        return len(self.successors(node_id)) > 1 or len(self.predecessors(node_id)) > 1

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles."""
        in_degree = {nid: 0 for nid in self.nodes}
        for edge in self.edges:
            in_degree[edge.dst] += 1
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            nid = ready.pop(0)
            order.append(nid)
            for succ in self.successors(nid):
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.nodes):
            raise GraphError(f"{self.name}: NF graph has a cycle")
        return order

    def validate(self) -> None:
        """Structural checks: non-empty, acyclic, single entry."""
        if not self.nodes:
            raise GraphError(f"{self.name}: empty NF graph")
        self.topological_order()
        entries = self.entry_nodes()
        if len(entries) != 1:
            raise GraphError(
                f"{self.name}: expected exactly one entry NF, found {entries}"
            )
        fractions_ok = all(e.fraction > 0 for e in self.edges)
        if not fractions_ok:
            raise GraphError(f"{self.name}: non-positive edge fraction")

    # -- traffic & linearization ---------------------------------------------

    def node_fractions(self, egress_aware: bool = False) -> Dict[str, float]:
        """Fraction of chain ingress traffic reaching each node.

        With ``egress_aware=True`` an NF's ``egress_ratio`` (< 1 for
        redundancy-eliminating NFs like Dedup, whose "packet egress rate
        is less than its ingress rate", §5.2) attenuates the traffic seen
        by everything downstream. The Placer deliberately ignores this by
        default — assuming full rate downstream is the conservative,
        worst-case choice the paper makes; the flag exposes the §5.2
        future-work refinement for analysis. A per-instance
        ``egress_ratio`` parameter overrides the vocabulary's value.
        """
        fractions = {nid: 0.0 for nid in self.nodes}
        for entry in self.entry_nodes():
            fractions[entry] = 1.0
        for nid in self.topological_order():
            outgoing = fractions[nid]
            if egress_aware:
                node = self.nodes[nid]
                ratio = float(
                    node.params.get("egress_ratio", node.info.egress_ratio)
                )
                outgoing *= ratio
            for edge in self.out_edges(nid):
                fractions[edge.dst] += outgoing * edge.fraction
        return fractions

    def linearize(self) -> List[LinearChain]:
        """Decompose the DAG into linear chains with traffic fractions (§3.2).

        'If a chain branches from NF X to two NFs Y and Z, and then merges
        back into an NF W, we decompose these into two chains X->Y->W and
        X->Z->W.'
        """
        entries = self.entry_nodes()
        chains: List[LinearChain] = []

        def walk(node_id: str, path: List[str], fraction: float) -> None:
            path = path + [node_id]
            out = self.out_edges(node_id)
            if not out:
                chains.append(LinearChain(node_ids=path, fraction=fraction))
                return
            for edge in out:
                walk(edge.dst, path, fraction * edge.fraction)

        for entry in entries:
            walk(entry, [], 1.0)
        return chains

    def same_structure(self, other: "NFGraph") -> bool:
        """Node/edge equality — same NFs, params, and wiring.

        SLOs live on :class:`NFChain`, not here, so a chain whose SLO was
        rescaled still reports the same structure; the Placer's incremental
        path uses this to decide whether an existing chain's NF→device
        assignment can be pinned across a solve.
        """
        if set(self.nodes) != set(other.nodes):
            return False
        for nid, node in self.nodes.items():
            theirs = other.nodes[nid]
            if node.nf_class != theirs.nf_class or node.params != theirs.params:
                return False
        mine = {(e.src, e.dst, repr(e.condition), e.fraction)
                for e in self.edges}
        theirs_edges = {(e.src, e.dst, repr(e.condition), e.fraction)
                        for e in other.edges}
        return mine == theirs_edges

    def nf_multiset(self) -> List[str]:
        """All NF class names in topological order (for reporting)."""
        return [self.nodes[nid].nf_class for nid in self.topological_order()]

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the NF graph (for docs/debugging).

        Edge labels carry branch conditions and non-trivial traffic
        fractions; render with ``dot -Tpng``.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for nid in self.topological_order():
            node = self.nodes[nid]
            shape = ("diamond" if self.is_branch_or_merge(nid)
                     else "box")
            lines.append(
                f'  "{nid}" [label="{node.nf_class}", shape={shape}];'
            )
        for edge in self.edges:
            labels = []
            if edge.condition:
                labels.append(str(edge.condition))
            if edge.fraction != 1.0:
                labels.append(f"{edge.fraction:.2f}")
            label = f' [label="{", ".join(labels)}"]' if labels else ""
            lines.append(f'  "{edge.src}" -> "{edge.dst}"{label};')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"<NFGraph {self.name}: {len(self.nodes)} NFs, {len(self.edges)} edges>"


def _arm_weights(branch: BranchSpec) -> List[float]:
    """Resolve arm traffic fractions: explicit weights, remainder split evenly."""
    explicit = [arm.weight for arm in branch.arms]
    assigned = sum(w for w in explicit if w is not None)
    if assigned > 1.0 + 1e-9:
        raise GraphError(f"branch arm weights sum to {assigned} > 1")
    unassigned = [i for i, w in enumerate(explicit) if w is None]
    weights = [w if w is not None else 0.0 for w in explicit]
    if unassigned:
        share = (1.0 - assigned) / len(unassigned)
        if share <= 0:
            raise GraphError("explicit arm weights leave no traffic for other arms")
        for i in unassigned:
            weights[i] = share
    return weights


@dataclass
class NFChain:
    """A deployable chain: NF graph + traffic aggregate + SLO (§2).

    This is the unit the Placer reasons over; a Lemur input is a list of
    these.
    """

    graph: NFGraph
    slo: SLO = field(default_factory=SLO)
    aggregate: TrafficAggregate = field(default_factory=TrafficAggregate)

    @property
    def name(self) -> str:
        return self.graph.name

    def with_slo(self, slo: SLO) -> "NFChain":
        return NFChain(graph=self.graph, slo=slo, aggregate=self.aggregate)


def chains_from_spec(
    text: str,
    slos: Optional[Iterable[SLO]] = None,
    vocabulary: Optional[Vocabulary] = None,
) -> List[NFChain]:
    """Parse a spec file and lower every pipeline into an :class:`NFChain`.

    ``slos`` pairs with pipelines positionally; missing entries default to
    best-effort (bulk) SLOs.
    """
    from repro.chain.parser import parse_spec

    ast = parse_spec(text)
    slo_list = list(slos or [])
    chains: List[NFChain] = []
    for index, pipeline in enumerate(ast.pipelines):
        name = ast.pipeline_names[index] or f"chain{index + 1}"
        graph = NFGraph.from_pipeline(pipeline, name=name, vocabulary=vocabulary)
        slo = slo_list[index] if index < len(slo_list) else SLO()
        chains.append(NFChain(graph=graph, slo=slo))
    return chains


def chains_with_slos(
    spec_text: str,
    slos: Iterable[Tuple[float, ...]],
    *,
    error: type = GraphError,
    vocabulary: Optional[Vocabulary] = None,
) -> List[NFChain]:
    """Parse a spec and attach one positional SLO tuple per chain.

    Each tuple is ``(t_min, t_max)`` or ``(t_min, t_max, d_max)``. The
    count must match the spec's chain count exactly — an experiment that
    silently defaulted a chain to best-effort would report vacuous SLO
    compliance. ``error`` selects the exception type so every experiment
    spec (chaos, lifecycle, traffic, serve) raises in its own family
    while sharing this one validator.
    """
    slo_list = list(slos)
    chains = chains_from_spec(spec_text, vocabulary=vocabulary)
    if len(slo_list) != len(chains):
        raise error(
            f"spec declares {len(chains)} chains but {len(slo_list)} "
            "SLOs were provided"
        )
    out: List[NFChain] = []
    for chain, bounds in zip(chains, slo_list):
        if not 2 <= len(bounds) <= 3:
            raise error(
                "each SLO must be (t_min, t_max) or "
                f"(t_min, t_max, d_max); got {bounds!r}"
            )
        slo = SLO(t_min=bounds[0], t_max=bounds[1]) if len(bounds) == 2 \
            else SLO(t_min=bounds[0], t_max=bounds[1], d_max=bounds[2])
        out.append(chain.with_slo(slo))
    return out
