"""Hand-written lexer for the chain-spec DSL.

The paper used ANTLR (120 lines of grammar) to parse NF chain specifications;
this is a dependency-free replacement. Tokens carry line/column for error
reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import SpecSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    ARROW = "->"
    ASSIGN = "="
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COLON = ":"
    COMMA = ","
    AT = "@"
    DOLLAR = "$"
    NEWLINE = "newline"
    EOF = "eof"


@dataclass
class Token:
    type: TokenType
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


_SINGLE_CHAR = {
    "=": TokenType.ASSIGN,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ":": TokenType.COLON,
    ",": TokenType.COMMA,
    "@": TokenType.AT,
    "$": TokenType.DOLLAR,
}


class Lexer:
    """Tokenizes a chain-spec string.

    Newlines are significant (statement separators) except inside brackets,
    where they are swallowed — matching the DSL's BESS-script heritage.
    """

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1
        self._bracket_depth = 0

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            token = self._next_token()
            if token is None:
                continue
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    # -- internals ----------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def _next_token(self) -> Optional[Token]:
        # skip spaces/tabs and comments; backslash-newline continues a line
        while True:
            ch = self._peek()
            if ch in (" ", "\t", "\r"):
                self._advance()
            elif ch == "#":
                while self._peek() not in ("", "\n"):
                    self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
            else:
                break

        line, column = self.line, self.column
        ch = self._peek()

        if ch == "":
            return Token(TokenType.EOF, None, line, column)

        if ch == "\n":
            self._advance()
            if self._bracket_depth > 0:
                return None  # newlines inside brackets are insignificant
            return Token(TokenType.NEWLINE, "\n", line, column)

        if ch == "-" and self._peek(1) == ">":
            self._advance(2)
            return Token(TokenType.ARROW, "->", line, column)

        if ch in "'\"":
            return self._string(ch, line, column)

        if ch.isdigit() or (ch == "-" and self._peek(1).isdigit()):
            return self._number(line, column)

        if ch.isalpha() or ch == "_":
            return self._ident(line, column)

        if ch in _SINGLE_CHAR:
            token_type = _SINGLE_CHAR[ch]
            if token_type in (TokenType.LPAREN, TokenType.LBRACKET, TokenType.LBRACE):
                self._bracket_depth += 1
            elif token_type in (TokenType.RPAREN, TokenType.RBRACKET, TokenType.RBRACE):
                self._bracket_depth = max(0, self._bracket_depth - 1)
            self._advance()
            return Token(token_type, ch, line, column)

        raise SpecSyntaxError(f"unexpected character {ch!r}", line, column)

    def _string(self, quote: str, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise SpecSyntaxError("unterminated string literal", line, column)
            if ch == "\n":
                raise SpecSyntaxError("newline in string literal", line, column)
            if ch == "\\":
                escape = self._peek(1)
                mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
                if escape in mapping:
                    chars.append(mapping[escape])
                    self._advance(2)
                    continue
                raise SpecSyntaxError(f"bad escape \\{escape}", self.line, self.column)
            if ch == quote:
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, column)
            chars.append(self._advance())

    def _number(self, line: int, column: int) -> Token:
        chars: List[str] = []
        if self._peek() == "-":
            chars.append(self._advance())
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            chars.append(self._advance(2))
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                chars.append(self._advance())
            try:
                return Token(TokenType.NUMBER, int("".join(chars), 16), line, column)
            except ValueError:
                raise SpecSyntaxError(f"bad hex literal {''.join(chars)!r}", line, column)
        seen_dot = False
        while self._peek().isdigit() or (self._peek() == "." and not seen_dot):
            if self._peek() == ".":
                if not self._peek(1).isdigit():
                    break  # trailing dot belongs to something else
                seen_dot = True
            chars.append(self._advance())
        text = "".join(chars)
        value: object = float(text) if seen_dot else int(text)
        return Token(TokenType.NUMBER, value, line, column)

    def _ident(self, line: int, column: int) -> Token:
        chars: List[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        return Token(TokenType.IDENT, "".join(chars), line, column)
