"""AST for the NF-chain specification DSL (§2).

The surface language is BESS-inspired dataflow::

    # instance declarations with parameters (optional)
    acl0 = ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}])

    # macro definitions (§A.1.1)
    $RULES = [{'dst_ip': '10.0.0.0/8', 'drop': False}]

    # pipelines: arrows chain NFs; [...] is a conditional branch block
    acl0 -> Encrypt -> IPv4Fwd
    ACL -> [{'vlan_tag': 0x1}: Encrypt, default: Monitor] -> IPv4Fwd

Parsing produces a :class:`ChainSpecAST`; :mod:`repro.chain.graph` lowers it
into the NF-graph IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass
class NFInvocation:
    """One NF use: class name, optional instance name, parameters."""

    nf_class: str
    instance_name: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def display_name(self) -> str:
        return self.instance_name or self.nf_class


@dataclass
class BranchArm:
    """One arm of a branch block: a match condition and a sub-pipeline.

    ``condition`` is a dict of field constraints ({'vlan_tag': 1}); the
    ``default`` arm has ``condition is None``. ``weight`` is the operator's
    estimate of the traffic fraction taking this arm (§3.2: operators
    estimate splits from historical measurements).
    """

    pipeline: "PipelineSpec"
    condition: Optional[Dict[str, object]] = None
    weight: Optional[float] = None


@dataclass
class BranchSpec:
    """A branch block ``[cond1: pipe1, cond2: pipe2, default: pipe3]``."""

    arms: List[BranchArm] = field(default_factory=list)


#: Items a pipeline is made of.
PipelineItem = Union[NFInvocation, BranchSpec]


@dataclass
class PipelineSpec:
    """A linear sequence of NFs and branch blocks."""

    items: List[PipelineItem] = field(default_factory=list)

    def nf_names(self) -> List[str]:
        """Flat list of every NF class used (recursing into branches)."""
        names: List[str] = []
        for item in self.items:
            if isinstance(item, NFInvocation):
                names.append(item.nf_class)
            else:
                for arm in item.arms:
                    names.extend(arm.pipeline.nf_names())
        return names


@dataclass
class ChainSpecAST:
    """A full parsed spec file: instance decls, macros, named pipelines."""

    instances: Dict[str, NFInvocation] = field(default_factory=dict)
    macros: Dict[str, object] = field(default_factory=dict)
    pipelines: List[PipelineSpec] = field(default_factory=list)
    pipeline_names: List[Optional[str]] = field(default_factory=list)
