"""Render an NF graph back into spec-DSL text.

The inverse of :func:`repro.chain.parser.parse_spec` +
:meth:`NFGraph.from_pipeline` (up to branch-arm ordering): useful for
tooling (the CLI's ``show`` command) and for round-trip property tests of
the front-end.

Only graphs the DSL can express render: a linear backbone whose branch
blocks rejoin before the next backbone element (exactly what lowering
produces). Arbitrary hand-built DAGs may raise :class:`GraphError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.chain.graph import NFChain, NFGraph, NFNode
from repro.exceptions import GraphError


def render_chain(chain: NFChain) -> str:
    """Render one chain as a ``chain <name>: ...`` statement."""
    return f"chain {chain.name}: {render_graph(chain.graph)}"


def render_spec(chains: List[NFChain]) -> str:
    """Render several chains as a complete spec document."""
    return "\n".join(render_chain(chain) for chain in chains) + "\n"


def render_graph(graph: NFGraph) -> str:
    """Render the pipeline expression of a graph."""
    (entry,) = graph.entry_nodes()
    pieces: List[str] = []
    current: Optional[str] = entry
    while current is not None:
        pieces.append(_render_node(graph.nodes[current]))
        succs = graph.successors(current)
        if not succs:
            break
        if len(succs) == 1:
            current = succs[0]
            continue
        merge, arm_exprs = _render_branch(graph, current)
        pieces.append("[" + ", ".join(arm_exprs) + "]")
        current = merge
    return " -> ".join(pieces)


def _render_node(node: NFNode) -> str:
    if not node.params:
        return node.nf_class
    args = ", ".join(
        f"{key}={_render_literal(value)}"
        for key, value in sorted(node.params.items())
    )
    return f"{node.nf_class}({args})"


def _render_literal(value) -> str:
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, list):
        return "[" + ", ".join(_render_literal(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(
            f"'{k}': {_render_literal(v)}" for k, v in value.items()
        )
        return "{" + inner + "}"
    raise GraphError(f"cannot render literal {value!r}")


def _render_branch(graph: NFGraph, branch_node: str):
    """Render the arms out of ``branch_node``; returns (merge node, arms).

    The merge node is the unique node where all arms reconverge (or None
    when the arms run to the chain's exits).
    """
    arms = []
    merge_candidates: List[Optional[str]] = []
    for edge in graph.out_edges(branch_node):
        nodes, merge = _walk_arm(graph, edge.dst)
        expr_parts = [_render_node(graph.nodes[nid]) for nid in nodes]
        expr = " -> ".join(expr_parts) if expr_parts else "pass"
        if edge.condition:
            cond = ", ".join(
                f"'{k}': {_render_literal(v)}"
                for k, v in sorted(edge.condition.items())
            )
            expr = "{" + cond + "}: " + expr
        elif not nodes:
            expr = "default: pass"
        if edge.fraction not in (1.0,) and not edge.condition:
            expr += f" @ {round(edge.fraction, 6)}"
        arms.append(expr)
        merge_candidates.append(merge)
    merges = {m for m in merge_candidates}
    if len(merges) != 1:
        raise GraphError(
            f"branch at {branch_node} does not reconverge at one merge "
            f"node: {merges}"
        )
    return merges.pop(), arms


def _walk_arm(graph: NFGraph, start: str):
    """Follow an arm until the merge node (>1 predecessors) or the exit."""
    nodes: List[str] = []
    current = start
    while True:
        if len(graph.predecessors(current)) > 1:
            return nodes, current  # the merge node itself
        nodes.append(current)
        succs = graph.successors(current)
        if not succs:
            return nodes, None
        if len(succs) > 1:
            raise GraphError("nested branches are not renderable yet")
        current = succs[0]
