"""The NF vocabulary: Table 3 of the paper.

Each NF in a chain spec must come from a predefined but extensible vocabulary.
The vocabulary records, per NF, which platforms have implementations (C++ on
BESS servers, P4 on the PISA switch, eBPF on the SmartNIC, OpenFlow), whether
the NF is stateful, and whether it may be replicated across cores. The two
bold NFs in Table 3 — NAT and Limiter — cannot be replicated.

``IPv4Fwd`` is artificially limited to P4-only for evaluation parity with the
paper (Table 3 caption); use :meth:`Vocabulary.unrestricted` to lift that.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Optional

from repro.exceptions import VocabularyError
from repro.hw.platform import Platform


@dataclass(frozen=True)
class NFInfo:
    """Static facts about one NF class.

    ``platforms`` lists where implementations exist; ``stateful`` NFs keep
    per-flow state; ``replicable`` is False for NFs that cannot be scaled
    across cores (§3.2 never replicates subgroups containing them);
    ``egress_ratio`` < 1 models NFs whose output rate is below input rate
    (Dedup, §5.2 'data-dependent NFs').
    """

    name: str
    spec: str
    platforms: FrozenSet[Platform]
    stateful: bool = False
    replicable: bool = True
    egress_ratio: float = 1.0
    aliases: FrozenSet[str] = frozenset()

    def available_on(self, platform: Platform) -> bool:
        return platform in self.platforms


def _nf(
    name: str,
    spec: str,
    platforms: Iterable[Platform],
    stateful: bool = False,
    replicable: bool = True,
    egress_ratio: float = 1.0,
    aliases: Iterable[str] = (),
) -> NFInfo:
    return NFInfo(
        name=name,
        spec=spec,
        platforms=frozenset(platforms),
        stateful=stateful,
        replicable=replicable,
        egress_ratio=egress_ratio,
        aliases=frozenset(aliases),
    )


_SERVER = Platform.SERVER
_PISA = Platform.PISA
_NIC = Platform.SMARTNIC
_OF = Platform.OPENFLOW

#: Table 3, row by row. Placement-choice dots map to the platform sets.
_TABLE3 = [
    _nf("Encrypt", "128-bit AES-CBC", [_SERVER], stateful=False,
        aliases=["Encryption"]),
    _nf("Decrypt", "128-bit AES-CBC", [_SERVER], stateful=False,
        aliases=["Decryption"]),
    _nf("FastEncrypt", "128-bit ChaCha", [_SERVER, _NIC],
        aliases=["FastEnc", "ChaCha"]),
    _nf("Dedup", "Network RE (EndRE)", [_SERVER], stateful=True,
        egress_ratio=1.0),
    _nf("Tunnel", "Push VLAN tag", [_SERVER, _PISA, _NIC, _OF]),
    _nf("Detunnel", "Pop VLAN tag", [_SERVER, _PISA, _NIC, _OF]),
    # Artificially P4-only for evaluation (Table 3 caption).
    _nf("IPv4Fwd", "IP address match", [_PISA], aliases=["Forward", "IPFwd"]),
    _nf("Limiter", "Token bucket", [_SERVER], stateful=True, replicable=False,
        aliases=["RateLimiter"]),
    _nf("UrlFilter", "HTML filter", [_SERVER], stateful=True,
        aliases=["URLFilter"]),
    _nf("Monitor", "Per-flow statistics", [_SERVER, _OF], stateful=True),
    _nf("NAT", "Carrier-grade NAT", [_SERVER, _PISA], stateful=True,
        replicable=False),
    _nf("LB", "Layer-4 load balance", [_SERVER, _PISA, _NIC], stateful=True,
        aliases=["LoadBalancer"]),
    _nf("BPF", "Flexible BPF match", [_SERVER, _PISA, _NIC],
        aliases=["Match"]),
    _nf("ACL", "ACL on src/dst fields", [_SERVER, _PISA, _NIC, _OF]),
]


class Vocabulary:
    """An extensible registry of NF classes.

    >>> vocab = default_vocabulary()
    >>> vocab.lookup("ACL").available_on(Platform.PISA)
    True
    """

    def __init__(self, nfs: Optional[Iterable[NFInfo]] = None):
        self._by_name: Dict[str, NFInfo] = {}
        for info in nfs or []:
            self.register(info)

    def register(self, info: NFInfo) -> None:
        """Add (or override) an NF class, including its aliases."""
        self._by_name[info.name] = info
        for alias in info.aliases:
            self._by_name[alias] = info

    def lookup(self, name: str) -> NFInfo:
        """Resolve an NF name or alias; raises :class:`VocabularyError`."""
        info = self._by_name.get(name)
        if info is None:
            known = ", ".join(sorted({i.name for i in self._by_name.values()}))
            raise VocabularyError(f"unknown NF {name!r}; vocabulary: {known}")
        return info

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list:
        """Canonical NF names (aliases excluded), sorted."""
        return sorted({info.name for info in self._by_name.values()})

    def unrestricted(self) -> "Vocabulary":
        """A copy with the artificial IPv4Fwd P4-only restriction lifted."""
        vocab = Vocabulary(
            {info for info in self._by_name.values()}
        )
        full = replace(
            vocab.lookup("IPv4Fwd"),
            platforms=frozenset([_SERVER, _PISA, _NIC, _OF]),
        )
        vocab.register(full)
        return vocab


def default_vocabulary() -> Vocabulary:
    """The paper's Table 3 vocabulary."""
    return Vocabulary(_TABLE3)
