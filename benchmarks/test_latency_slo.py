"""E13: §5.3 — latency-constrained placement (chains {1, 4}).

Reproduction target: a loose delay SLO lets Lemur add switch↔server
bounces for marginal throughput; tightening it forces a low-bounce
placement with visibly lower throughput (paper: 45 µs → >21 Gbps,
25 µs → 9 Gbps; absolute µs thresholds differ with our latency model, the
loose/tight shape is the target).
"""

from conftest import record_result, run_once

from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta
from repro.hw.topology import default_testbed

LOOSE_US = 45.0
TIGHT_US = 32.0


def _with_dmax(chains, d_max):
    return [
        c.with_slo(SLO(t_min=c.slo.t_min, t_max=c.slo.t_max, d_max=d_max))
        for c in chains
    ]


def test_latency_slo_tradeoff(benchmark, profiles):
    def run():
        out = {}
        for d_max in (LOOSE_US, TIGHT_US):
            chains = _with_dmax(
                chains_with_delta([1, 4], delta=0.5, profiles=profiles),
                d_max,
            )
            out[d_max] = heuristic_place(chains, default_testbed(), profiles)
        return out

    results = run_once(benchmark, run)
    loose, tight = results[LOOSE_US], results[TIGHT_US]

    rows = []
    for d_max, placement in results.items():
        bounces = [cp.bounces for cp in placement.chains]
        latencies = [f"{cp.latency_us:.1f}" for cp in placement.chains]
        rows.append(
            f"d_max={d_max:5.1f}us: feasible={placement.feasible} "
            f"marginal={placement.objective_mbps:.0f} Mbps "
            f"bounces={bounces} latencies={latencies}us"
        )
    record_result("latency_slo", "\n".join(rows))

    assert loose.feasible and tight.feasible
    # tighter budget -> fewer bounces -> lower marginal throughput
    assert max(cp.bounces for cp in tight.chains) < \
        max(cp.bounces for cp in loose.chains)
    assert tight.objective_mbps < loose.objective_mbps
    for placement in (loose, tight):
        for cp in placement.chains:
            assert cp.latency_us <= cp.chain.slo.d_max
