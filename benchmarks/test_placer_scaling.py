"""E15: §5.3 — Placer computation scaling.

"Brute-force placement is slow; for the 4-chain case (34 NF instances in
total) it takes 14901 seconds (~4 hours). Our heuristic is far faster,
taking 3.5 s for the 4-chain case."

Reproduction target: the heuristic is orders of magnitude (>= 100x)
faster than the bounded brute-force search on the 4-chain input, and
completes in interactive time. (Our brute force bounds its combination
budget, so its absolute runtime is far below 4 hours; the gap, not the
absolute, is the target.)
"""

import time

from conftest import record_result, run_once

from repro.core.bruteforce import brute_force_place
from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta
from repro.hw.topology import default_testbed


def test_heuristic_speed(benchmark, profiles):
    """The heuristic itself, timed properly over several rounds."""
    chains = chains_with_delta([1, 2, 3, 4], delta=1.0, profiles=profiles)

    placement = benchmark(
        lambda: heuristic_place(chains, default_testbed(), profiles)
    )
    assert placement.feasible
    # interactive: well under the paper's 3.5 s
    assert benchmark.stats["mean"] < 3.5


def test_bruteforce_vs_heuristic_gap(benchmark, profiles):
    chains = chains_with_delta([1, 2, 3, 4], delta=1.0, profiles=profiles)

    def run():
        t0 = time.perf_counter()
        optimal = brute_force_place(chains, default_testbed(), profiles)
        brute_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        lemur = heuristic_place(chains, default_testbed(), profiles)
        heuristic_seconds = time.perf_counter() - t0
        return optimal, lemur, brute_seconds, heuristic_seconds

    optimal, lemur, brute_seconds, heuristic_seconds = run_once(
        benchmark, run
    )
    ratio = brute_seconds / max(heuristic_seconds, 1e-9)
    record_result(
        "placer_scaling",
        f"brute force: {brute_seconds:.2f}s  heuristic: "
        f"{heuristic_seconds * 1000:.1f}ms  ratio: {ratio:.0f}x\n"
        f"(paper: 14901s vs 3.5s = ~4257x, with an unbounded search)",
    )
    assert lemur.feasible
    assert optimal.feasible
    assert ratio >= 100.0
    # heuristic quality: same objective as the bounded optimal here
    assert lemur.objective_mbps >= 0.95 * optimal.objective_mbps
