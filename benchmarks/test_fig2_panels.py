"""E1-E5: Figure 2(a-e) — scheme comparison over the δ sweep.

Five panels: chains {1,2,3,4} and every 3-subset. Each cell places the
chains with one scheme, generates code, and measures aggregate throughput
on the simulated testbed. Reproduction targets (shapes, §5.2):

* Lemur finds a feasible solution wherever any other scheme does;
* as δ grows, Lemur is the last scheme standing;
* SW Preferred and Min Bounce fail at much lower δ than HW Preferred /
  Greedy;
* measured throughput tracks the prediction (◇) closely;
* aggregate throughput decreases as δ increases (resources shift to
  expensive chains).

The Optimal (brute-force) scheme is evaluated on a coarser δ grid — the
paper itself reports ~4 hours for one brute-force run — and must match
Lemur's marginal throughput on almost every cell (§5.2 "in all but one").
"""

import pytest

from conftest import record_result, run_once

from repro.experiments.runner import run_delta_sweep
from repro.experiments.schemes import SCHEMES

PANELS = {
    "fig2a": (1, 2, 3, 4),
    "fig2b": (1, 2, 3),
    "fig2c": (1, 2, 4),
    "fig2d": (1, 3, 4),
    "fig2e": (2, 3, 4),
}
DELTAS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
FAST_SCHEMES = {k: v for k, v in SCHEMES.items() if k != "Optimal"}


@pytest.mark.parametrize("panel", list(PANELS), ids=list(PANELS))
def test_figure2_panel(benchmark, panel, profiles):
    indices = PANELS[panel]

    sweep = run_once(
        benchmark,
        lambda: run_delta_sweep(indices, deltas=DELTAS,
                                schemes=FAST_SCHEMES, profiles=profiles),
    )
    record_result(panel, sweep.print_table())

    # Lemur dominates: feasible wherever anyone is, with >= marginal.
    for delta in DELTAS:
        lemur = next(r for r in sweep.results
                     if r.scheme == "Lemur" and r.delta == delta)
        for result in sweep.results:
            if result.delta != delta or result.scheme == "Lemur":
                continue
            if result.feasible:
                assert lemur.feasible, (
                    f"{panel} δ={delta}: {result.scheme} feasible but "
                    f"Lemur is not"
                )
                assert lemur.marginal_mbps >= result.marginal_mbps - 1e-6

    # Lemur survives strictly further than the weak baselines.
    assert sweep.feasibility_fraction("Lemur") > \
        sweep.feasibility_fraction("SW Preferred")
    assert sweep.feasibility_fraction("Lemur") > \
        sweep.feasibility_fraction("Min Bounce")

    # Measured tracks predicted within 15% on feasible cells.
    for result in sweep.results:
        if result.feasible and result.predicted_mbps > 0:
            assert result.measured_mbps == pytest.approx(
                result.predicted_mbps, rel=0.15
            )

    # Aggregate throughput for Lemur does not increase with δ.
    lemur_cells = [r for r in sweep.for_scheme("Lemur") if r.feasible]
    rates = [r.measured_mbps for r in lemur_cells]
    assert rates[0] == max(rates) or rates[0] >= 0.95 * max(rates)


def test_optimal_matches_lemur(benchmark, profiles):
    """Optimal vs Lemur on the 4-chain panel (coarse δ grid)."""
    from repro.hw.topology import default_testbed
    from repro.core.bruteforce import brute_force_place
    from repro.core.heuristic import heuristic_place
    from repro.experiments.chains import chains_with_delta

    deltas = (0.5, 1.0, 1.5)
    rows = []

    def run():
        out = []
        for delta in deltas:
            chains = chains_with_delta([1, 2, 3, 4], delta,
                                       profiles=profiles)
            optimal = brute_force_place(chains, default_testbed(), profiles)
            lemur = heuristic_place(chains, default_testbed(), profiles)
            out.append((delta, optimal, lemur))
        return out

    results = run_once(benchmark, run)
    matched = 0
    for delta, optimal, lemur in results:
        rows.append(
            f"δ={delta}: optimal="
            f"{optimal.objective_mbps:.0f} lemur={lemur.objective_mbps:.0f}"
            if optimal.feasible else f"δ={delta}: both infeasible"
        )
        assert optimal.feasible == lemur.feasible
        if optimal.feasible:
            assert optimal.objective_mbps >= lemur.objective_mbps - 1e-6
            if optimal.objective_mbps <= lemur.objective_mbps + 1.0:
                matched += 1
    record_result("fig2_optimal_vs_lemur", "\n".join(rows))
    # Lemur matches Optimal in all but at most one cell (§5.2).
    feasible_cells = sum(1 for _d, o, _l in results if o.feasible)
    assert matched >= feasible_cells - 1
