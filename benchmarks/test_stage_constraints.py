"""E11: §5.2's extreme configuration — P4 stage constraints.

``BPF -> 11xNAT (branched) -> IPv4Fwd`` at δ = 0.5. Reproduction targets:

* placing all 11 NATs on the switch exceeds the 12-stage budget, so every
  hardware-first alternative fails, while Lemur finds a feasible solution
  with 10 NATs on the switch and one on the server;
* the platform compiler packs the 10-NAT pipeline into 12 stages where
  the conservative analytic estimate says 14 (paper: 14 vs 12);
* naive codegen (no dependency elimination) needs ~27 stages (paper: 27).
"""

from conftest import record_result, run_once

from repro.chain.slo import SLO
from repro.experiments.chains import base_rate_mbps, nat_stress_chain
from repro.experiments.figures import stage_constraint_experiment
from repro.hw.topology import default_testbed
from repro.units import gbps


def test_stage_constraint_experiment(benchmark, profiles):
    result = run_once(
        benchmark, lambda: stage_constraint_experiment(profiles=profiles)
    )
    record_result("stage_constraints", result.print_table())

    assert not result.all_switch_11_fits
    assert result.lemur_feasible
    assert result.lemur_nats_on_switch == 10
    assert result.compiler_stages_10 == 12
    assert result.conservative_stages_10 == 14
    assert result.naive_stages_10 >= 24
    assert result.conservative_stages_10 > result.compiler_stages_10


def test_hardware_first_alternatives_fail(benchmark, profiles):
    """HW Preferred / Greedy / Min Bounce exceed stages; SW Preferred
    cannot satisfy the SLO (§5.2).

    The SW-Preferred failure needs t_min above one BPF core's rate (its
    branch-node subgroup cannot replicate); with our base-rate scale that
    is δ = 1.0 rather than the paper's 0.5 — the mechanism is identical.
    """
    from repro.core.baselines import (
        greedy_place,
        hw_preferred_place,
        min_bounce_place,
        sw_preferred_place,
    )

    chain = nat_stress_chain(11)
    base = base_rate_mbps(chain, profiles)
    chains = [chain.with_slo(SLO(t_min=1.0 * base, t_max=gbps(100)))]

    def run():
        return {
            "hw": hw_preferred_place(chains, default_testbed(), profiles),
            "greedy": greedy_place(chains, default_testbed(), profiles),
            "minbounce": min_bounce_place(chains, default_testbed(),
                                          profiles),
            "sw": sw_preferred_place(chains, default_testbed(), profiles),
        }

    placements = run_once(benchmark, run)
    rows = [f"{name}: {'feasible' if p.feasible else p.infeasible_reason}"
            for name, p in placements.items()]
    record_result("stage_constraints_alternatives", "\n".join(rows))

    assert not placements["hw"].feasible
    assert "stages" in placements["hw"].infeasible_reason
    assert not placements["greedy"].feasible
    assert not placements["sw"].feasible  # NAT subgroup can't replicate
