"""Sweep engine acceptance: parallel determinism + cache speedup.

Two properties the sweep engine must hold (ISSUE acceptance criteria):

* dispatching the Fig-2 grid over a process pool (``jobs=4``) produces
  *byte-identical* ``ExperimentResult`` rows, in the same order, as the
  serial loop — ``execute_cell`` is the single shared implementation;
* re-running a panel against a warm :class:`PlacementCache` skips every
  LP solve and cuts wall-clock by at least 2x.

The recorded table under ``benchmarks/results/sweep_engine.txt`` holds
the measured numbers for EXPERIMENTS.md.
"""

import time

from conftest import record_result, run_once

from repro.core.cache import PlacementCache, scoped_cache
from repro.experiments.runner import SweepSpec
from repro.experiments.runner import run_sweep
from repro.experiments.schemes import SCHEMES

FAST_SCHEMES = {k: v for k, v in SCHEMES.items() if k != "Optimal"}


def _panel_spec(**overrides):
    base = dict(
        chain_indices=(1, 2, 3),
        deltas=(0.5, 1.0, 1.5, 2.0),
        schemes=FAST_SCHEMES,
        measure=False,
        cache=False,
    )
    base.update(overrides)
    return SweepSpec(**base)


def test_parallel_rows_byte_identical(benchmark, profiles):
    """jobs=4 must reproduce the serial rows exactly, in order."""
    spec = _panel_spec(profiles=profiles)
    serial = run_sweep(spec)
    parallel = run_once(benchmark, lambda: run_sweep(spec.with_jobs(4)))
    assert parallel.results == serial.results
    assert [
        (r.scheme, r.delta) for r in parallel.results
    ] == [(r.scheme, r.delta) for r in serial.results]


def test_warm_cache_halves_panel_wall_clock(benchmark, profiles):
    """A warm placement cache must cut a repeated panel's time >= 2x."""
    spec = _panel_spec(profiles=profiles, cache=True)

    def cold_then_warm():
        with scoped_cache(PlacementCache()) as cache:
            start = time.perf_counter()
            cold = run_sweep(spec)
            cold_s = time.perf_counter() - start

            start = time.perf_counter()
            warm = run_sweep(spec)
            warm_s = time.perf_counter() - start
        return cold, warm, cold_s, warm_s, cache.stats()

    cold, warm, cold_s, warm_s, stats = run_once(benchmark, cold_then_warm)

    cells = len(spec.cells())
    assert stats["misses"] == cells
    assert stats["hits"] == cells
    assert warm.results == cold.results
    assert cold_s >= 2 * warm_s, (
        f"warm cache only {cold_s / warm_s:.2f}x faster "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )

    lines = [
        "sweep engine: placement cache on repeated fig-2 panel "
        "(chains 1+2+3, 4 deltas, 5 schemes)",
        f"  grid cells      {cells}",
        f"  cold pass       {cold_s * 1e3:8.1f} ms "
        f"({stats['misses']} cache misses)",
        f"  warm pass       {warm_s * 1e3:8.1f} ms "
        f"({stats['hits']} cache hits)",
        f"  speedup         {cold_s / warm_s:8.2f}x (target >= 2x)",
    ]
    record_result("sweep_engine", "\n".join(lines))
