"""Lifecycle acceptance: incremental admission beats a cold re-solve.

The online lifecycle engine admits one arriving chain against a
12-chain steady state by warm-starting from the live placement
(`PlacementRequest.base_placement`): running chains keep their
NF-to-device assignments, only the delta chain is placed, and delta
stage checks compile against the pinned switch program. The cold
solver re-searches patterns for all 13 chains from scratch.

Reproduction target: on a rack where the steady state saturates the
ToR stage budget (the regime where cold placement search works
hardest), the incremental solve is >= 3x faster than the cold solve
and reaches the same admission verdict.
"""

import time

from conftest import record_result, run_once

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.placer import Placer, PlacementRequest
from repro.experiments.chains import _CHAIN_SPECS
from repro.hw.topology import multi_server_testbed
from repro.units import gbps

NUM_CHAINS = 12
NUM_SERVERS = 6
NUM_STAGES = 13


def _steady_state_chains():
    lines = []
    for i in range(NUM_CHAINS):
        index = (i % 5) + 1
        lines.append(_CHAIN_SPECS[index].replace(
            f"chain chain{index}:", f"chain c{i}:"))
    slos = [SLO(t_min=gbps(0.3), t_max=gbps(2))] * NUM_CHAINS
    return chains_from_spec("\n".join(lines), slos=slos)


def test_incremental_arrival_vs_cold_resolve(benchmark):
    chains = _steady_state_chains()
    (arrival,) = chains_from_spec(
        "chain dyn0: Monitor -> IPv4Fwd",
        slos=[SLO(t_min=gbps(0.3), t_max=gbps(2))],
    )
    placer = Placer(topology=multi_server_testbed(
        num_servers=NUM_SERVERS, num_stages=NUM_STAGES))
    base = placer.solve(PlacementRequest(chains=chains, use_cache=False))
    assert base.placement.feasible

    def run():
        grown = list(chains) + [arrival]
        t0 = time.perf_counter()
        incremental = placer.solve(PlacementRequest(
            chains=grown, base_placement=base.placement, use_cache=False))
        incremental_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        cold = placer.solve(PlacementRequest(chains=grown, use_cache=False))
        cold_seconds = time.perf_counter() - t0
        return incremental, cold, incremental_seconds, cold_seconds

    incremental, cold, incremental_seconds, cold_seconds = run_once(
        benchmark, run
    )
    ratio = cold_seconds / max(incremental_seconds, 1e-9)
    record_result(
        "lifecycle_incremental",
        f"single arrival over {NUM_CHAINS}-chain steady state "
        f"({NUM_SERVERS} servers, {NUM_STAGES}-stage ToR)\n"
        f"cold full solve: {cold_seconds * 1000:.1f}ms  "
        f"incremental: {incremental_seconds * 1000:.1f}ms  "
        f"speedup: {ratio:.1f}x\n"
        f"pinned {incremental.pinned_chains} chains, placed "
        f"{incremental.placed_chains} (mode={incremental.mode})",
    )
    assert incremental.mode == "incremental"
    assert incremental.pinned_chains == NUM_CHAINS
    assert incremental.placed_chains == 1
    assert incremental.placement.feasible
    assert cold.placement.feasible
    assert ratio >= 3.0
    # admission guarantee: every chain still meets its SLO floor
    for cp in incremental.placement.chains:
        rate = incremental.placement.rates.get(cp.name, 0.0)
        assert rate >= cp.chain.slo.t_min - 1e-6
