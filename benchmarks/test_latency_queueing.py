"""Tail-aware placement under queueing delay (latency-SLO tentpole).

A single chain saturates the rack: the throughput objective assigns the
full 30 Gbps burst cap, driving per-core utilization — and hence M/M/1
queueing wait — to the clamp. The ``tail_latency`` objective caps
utilization at the configured headroom instead, trading assigned rate
for a several-fold lower measured p99. Both runs replay the identical
seeded packet stream; the recorded table is the evidence for the
objective's rate/latency trade-off.
"""

from conftest import record_result, run_once

from repro.sim.traffic import TrafficSpec, run_traffic
from repro.units import gbps

_SPEC_TEXT = "chain a: Encrypt -> IPv4Fwd"


def _spec(objective):
    return TrafficSpec(
        spec_text=_SPEC_TEXT,
        slos=((gbps(0.5), gbps(30), float("inf")),),
        packets_per_chain=512,
        flows_per_chain=32,
        batch_size=32,
        seed=23,
        queueing="mm1",
        objective=objective,
    )


def test_tail_latency_objective_lowers_p99(benchmark):
    def run():
        return {
            objective: run_traffic(_spec(objective))
            for objective in ("throughput", "tail_latency")
        }

    results = run_once(benchmark, run)

    rows = []
    for objective, report in results.items():
        row = report.chains[0]
        rows.append(
            f"objective={objective:<12} "
            f"assigned={row.assigned_mbps:8.1f} Mbps "
            f"p50={row.latency_p50_us:6.2f}us "
            f"p95={row.latency_p95_us:6.2f}us "
            f"p99={row.latency_p99_us:6.2f}us "
            f"delivered={row.delivered}/{row.injected}"
        )
    record_result("latency_queueing", "\n".join(rows))

    thr = results["throughput"].chains[0]
    tail = results["tail_latency"].chains[0]
    # the cap halves (at least) the tail while still clearing the floor
    assert tail.latency_p99_us < 0.5 * thr.latency_p99_us
    assert tail.assigned_mbps < thr.assigned_mbps
    assert tail.assigned_mbps >= gbps(0.5)
    # both runs deliver their full assigned stream (rate SLOs intact) —
    # the trade-off is purely latency vs assigned headroom
    assert thr.delivered == thr.injected
    assert tail.delivered == tail.injected
