"""E10: Table 4 — profiled NF costs over 500 runs, NUMA same vs diff.

Reproduction targets: the published mean/min/max cycle costs for Encrypt,
Dedup, ACL(1024) and NAT(12000) are reproduced within a few percent, the
NUMA-different placement is consistently costlier, and the worst case
stays within 6.5% of the mean (the stability that §5.2 credits for the
accuracy of throughput predictions).
"""

import pytest

from conftest import record_result, run_once

from repro.experiments.figures import table4_rows
from repro.profiles.profiler import Profiler

#: Table 4, verbatim: (nf, params, numa) -> (mean, min, max)
PAPER_ROWS = {
    ("Encrypt", "same"): (8593, 8405, 8777),
    ("Encrypt", "diff"): (8950, 8755, 9123),
    ("Dedup", "same"): (30182, 29202, 30867),
    ("Dedup", "diff"): (31188, 29969, 33185),
    ("ACL", "same"): (3841, 3801, 4008),
    ("ACL", "diff"): (4020, 3943, 4091),
    ("NAT", "same"): (463, 459, 477),
    ("NAT", "diff"): (496, 491, 507),
}


def test_table4(benchmark, profiles):
    rows = run_once(benchmark, lambda: Profiler().table4(runs=500))
    record_result("table4", "\n".join(table4_rows(runs=500)))

    for stats in rows:
        paper_mean, paper_min, paper_max = PAPER_ROWS[
            (stats.nf_class, stats.numa)
        ]
        assert stats.mean == pytest.approx(paper_mean, rel=0.05)
        assert stats.max <= paper_max * 1.01
        assert stats.min >= paper_min * 0.90
        # stability: worst case within 6.5% of the average
        assert stats.worst_case_over_mean < 0.065

    # NUMA-diff rows are costlier than their NUMA-same siblings.
    by_key = {(s.nf_class, s.numa): s for s in rows}
    for nf in ("Encrypt", "Dedup", "ACL", "NAT"):
        assert by_key[(nf, "diff")].mean > by_key[(nf, "same")].mean
