"""Extension ablation: Metron-style ToR core steering (§3.2/§4.2).

The paper plans to "generate PISA switch code to tag and steer packets to
specific cores as in Metron", removing the software demultiplexer's core
and its ~180-cycle per-packet load-balancing cost. This bench quantifies
that future-work item on our substrate: Metron steering must never hurt,
must free one core per server, and should push feasibility to higher δ.
"""

from conftest import record_result, run_once

from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta
from repro.hw.topology import default_testbed

DELTAS = (0.5, 1.0, 1.5, 2.0, 2.5)


def test_metron_steering_ablation(benchmark, profiles):
    def run():
        rows = []
        for delta in DELTAS:
            chains = chains_with_delta([1, 2, 3, 4], delta,
                                       profiles=profiles)
            plain = heuristic_place(chains, default_testbed(), profiles)
            metron = heuristic_place(
                chains, default_testbed(metron_steering=True), profiles
            )
            rows.append((delta, plain, metron))
        return rows

    rows = run_once(benchmark, run)
    lines = []
    metron_extra_feasible = 0
    for delta, plain, metron in rows:
        plain_s = (f"{plain.objective_mbps:8.0f}" if plain.feasible
                   else "     INF")
        metron_s = (f"{metron.objective_mbps:8.0f}" if metron.feasible
                    else "     INF")
        lines.append(f"δ={delta}: demux-core {plain_s}  metron {metron_s}"
                     f"  (marginal Mbps)")
        if plain.feasible:
            assert metron.feasible
            assert metron.objective_mbps >= plain.objective_mbps - 1e-6
        if metron.feasible and not plain.feasible:
            metron_extra_feasible += 1
    record_result("ablation_metron", "\n".join(lines))

    # the freed core + removed LB cycles must buy at least one extra
    # feasible δ or a strictly better marginal somewhere
    improvements = sum(
        1 for _d, plain, metron in rows
        if metron.feasible and (
            not plain.feasible
            or metron.objective_mbps > plain.objective_mbps + 1.0
        )
    )
    assert improvements >= 1
