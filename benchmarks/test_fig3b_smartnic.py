"""E8: Figure 3b — SmartNIC offload of ChaCha (Chain 5).

Reproduction targets (§5.3): with the 40 G Netronome NIC Lemur reaches
(close to) the NIC's line rate by offloading FastEncrypt; the server-only
deployment tops out lower; and at sufficiently high t_min the server-only
variant is infeasible while the SmartNIC one still satisfies the SLO.

(The δ at which server-only dies depends on the core budget; our 16-core
server holds on longer than the paper's configuration, so the sweep
extends further — the crossover shape is the target.)
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure3b_smartnic
from repro.units import gbps

DELTAS = (0.5, 1.5, 10.0)


def test_figure3b(benchmark, profiles):
    result = run_once(
        benchmark,
        lambda: figure3b_smartnic(deltas=DELTAS, profiles=profiles),
    )
    record_result("fig3b", result.print_table())

    for delta in DELTAS:
        nic = result.aggregate(True, delta)
        server = result.aggregate(False, delta)
        if nic is not None and server is not None:
            assert nic > server  # offload always wins

    # SmartNIC run reaches ~line rate (40 G minus NSH overhead).
    assert result.aggregate(True, 0.5) >= 0.95 * gbps(40)

    # the crossover: server-only infeasible, SmartNIC feasible
    assert result.aggregate(False, 10.0) is None
    assert result.aggregate(True, 10.0) is not None
