"""E9: Figure 3c — accelerating chain 3's ACL on an OpenFlow switch.

Reproduction target (§5.3): the OF switch executes the offloadable
sub-chain at (near) port line rate, roughly an order of magnitude above
stitching the same NFs through a single commodity-server core (paper:
7710 Mbps vs 693 Mbps, ~11x).
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure3c_openflow


def test_figure3c(benchmark, profiles):
    result = run_once(benchmark,
                      lambda: figure3c_openflow(profiles=profiles))
    record_result("fig3c", result.print_table())

    assert result.offloaded_mbps > result.server_mbps
    # order-of-magnitude acceleration (paper: ~11x; ours: ~13x)
    assert result.speedup >= 8.0
    # absolute server-side magnitude matches the paper's ballpark
    assert 400.0 <= result.server_mbps <= 1200.0
