"""E7: Figure 3a — Lemur across one vs two 8-core servers.

Reproduction targets (§5.3): at δ = 0.5 the single server achieves roughly
half (or less) of the 2-server aggregate; at δ = 1.5 the single-server
case is infeasible (Chain 3's Dedup->ACL->Limiter needs Dedup replicated
plus a dedicated Limiter core) while two servers remain feasible.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure3a_multiserver

DELTAS = (0.5, 1.0, 1.5)


def test_figure3a(benchmark, profiles):
    result = run_once(
        benchmark,
        lambda: figure3a_multiserver(deltas=DELTAS, profiles=profiles),
    )
    record_result("fig3a", result.print_table())

    one_low = result.aggregate(1, 0.5)
    two_low = result.aggregate(2, 0.5)
    assert one_low is not None and two_low is not None
    # "the single server gets less than half the aggregate throughput of
    # the 2-server experiment" — we allow a small tolerance on 'half'.
    assert one_low <= 0.6 * two_low

    # at δ=1.5: one server infeasible, two servers feasible
    assert result.aggregate(1, 1.5) is None
    assert result.aggregate(2, 1.5) is not None
