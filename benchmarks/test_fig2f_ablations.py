"""E6: Figure 2f — importance of Lemur's components.

Reproduction targets (§5.3): No Profiling generally has lower marginal
throughput than Lemur and goes infeasible at higher δ; No Core Allocation
only satisfies SLOs at δ = 0.5.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure2f_ablations

DELTAS = (0.5, 1.0, 1.5, 2.0)


def test_figure2f(benchmark, profiles):
    sweep = run_once(
        benchmark, lambda: figure2f_ablations(deltas=DELTAS)
    )
    record_result("fig2f", sweep.print_table())

    lemur = sweep.for_scheme("Lemur")
    no_prof = sweep.for_scheme("No Profiling")
    no_core = sweep.for_scheme("No Core Alloc")

    # No Core Allocation: only the lowest δ survives.
    assert no_core[0].delta == 0.5 and no_core[0].feasible
    assert not any(r.feasible for r in no_core if r.delta > 0.5)

    # No Profiling never beats Lemur; dies earlier.
    assert sweep.feasibility_fraction("No Profiling") <= \
        sweep.feasibility_fraction("Lemur")
    for lem, flat in zip(lemur, no_prof):
        if flat.feasible:
            assert lem.feasible
            assert lem.marginal_mbps >= flat.marginal_mbps - 1e-6

    # Lemur itself holds on longest.
    assert sweep.feasibility_fraction("Lemur") >= 0.75
