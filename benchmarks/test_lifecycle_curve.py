"""Admission-curve experiment: incremental vs full-resolve admission.

Replays a seeded arrival-only timeline through the lifecycle engine in
both admission modes and records the resulting curves. Reproduction
target: admission saturates (some arrivals rejected with the running
chains untouched), the curve is monotone, and warm-started admission
does not admit fewer tenants than cold re-solving on this workload.
"""

from conftest import record_result, run_once

from repro.experiments.lifecycle_curve import lifecycle_admission_curve

N_ARRIVALS = 8


def test_admission_curve_shape(benchmark):
    result = run_once(
        benchmark, lambda: lifecycle_admission_curve(N_ARRIVALS, seed=23)
    )
    record_result("lifecycle_admission_curve", result.print_table())

    assert len(result.incremental) == N_ARRIVALS
    assert len(result.full) == N_ARRIVALS
    for points in (result.incremental, result.full):
        # the rack admits some growth, then saturates
        assert points[-1].cumulative_accepted >= 2
        assert any(not p.accepted for p in points)
        # cumulative admission is monotone and rejections change nothing
        for prev, cur in zip(points, points[1:]):
            assert cur.cumulative_accepted >= prev.cumulative_accepted
            if not cur.accepted:
                assert cur.cumulative_accepted == prev.cumulative_accepted
                assert cur.aggregate_mbps == prev.aggregate_mbps
        for p in points:
            if not p.accepted:
                assert p.reason
    # warm-started admission is not more conservative than cold re-solves
    assert result.accepted("incremental") >= result.accepted("full")
