"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures
(DESIGN.md's per-experiment index E1-E18), prints the same rows/series the
paper reports, asserts the reproduction-target *shape*, and records the
rendered table under ``benchmarks/results/`` for EXPERIMENTS.md.

Timing is captured with pytest-benchmark; expensive experiments run once
(``pedantic`` with one round) and cache their results at module scope so
shape assertions do not re-run them.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(name: str, text: str) -> None:
    """Persist a rendered table/series for the experiment record."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


@pytest.fixture(scope="session")
def profiles():
    from repro.profiles.defaults import default_profiles

    return default_profiles()


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
