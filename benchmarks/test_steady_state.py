"""Steady-state phase latency: persistent worker runtime vs per-run pools.

A long-running control plane (``repro serve``) replays many *short*
traffic phases against the same deployed chains — the regime where the
per-run ``ProcessPoolExecutor`` is dominated by fixed costs it pays
every phase: pool spawn/teardown, re-pickling the full
``(topology, artifacts, profiles, placement)`` bundle into every task,
and a from-scratch rack deploy in every worker. The persistent
:class:`~repro.runtime.pool.WorkerPool` pays each of those once: workers
stay alive across phases, artifacts ship by fingerprint at most once per
worker, and the deployed rack is reset (warm) instead of rebuilt.

This benchmark replays ``PHASES`` consecutive short phases through the
same :class:`~repro.sim.traffic.TrafficEngine` three ways — single
process (reference), a throwaway pool per phase (``--pool per-run``),
and the persistent pool (``--pool keep``) — and records per-phase
latency. Reproduction targets: the persistent pool is >= 5x faster than
the per-run pool over the whole phase train, with byte-identical
delivery outcomes phase for phase.

``STEADY_BENCH_PHASES`` overrides the phase count.
"""

import os
import time

from conftest import record_result, run_once

from repro.obs import MetricsRegistry
from repro.runtime.pool import shutdown_pool
from repro.sim.traffic import TrafficEngine, TrafficSpec

#: two independent chains, one per shard — phases small enough that the
#: per-phase fixed costs, not the replay itself, dominate.
SPEC = "\n".join([
    "chain c1: ACL -> NAT",
    "chain c2: NAT -> IPv4Fwd",
])
SLOS = ((100.0, 200.0), (100.0, 200.0))
PHASES = int(os.environ.get("STEADY_BENCH_PHASES", "20"))
PACKETS = 8
FLOWS = 4
BATCH = 32
SHARDS = 2


def _phase_train(pool, shards=SHARDS):
    """Replay ``PHASES`` short phases; returns (reports, registry, wall)."""
    shutdown_pool()
    registry = MetricsRegistry()
    engine = TrafficEngine.from_spec(
        TrafficSpec(
            spec_text=SPEC, slos=SLOS, packets_per_chain=PACKETS,
            flows_per_chain=FLOWS, batch_size=BATCH, vectorized=True,
            shards=shards, pool=pool,
        ),
        registry=registry,
    )
    reports = []
    started = time.perf_counter()
    for _phase in range(PHASES):
        reports.append(engine.run(packets_per_chain=PACKETS))
    wall = time.perf_counter() - started
    shutdown_pool()
    return [report.to_json() for report in reports], registry, wall


def _rack_builds(registry):
    return {
        counter["labels"]["mode"]: counter["value"]
        for counter in registry.snapshot()["counters"]
        if counter["name"] == "runtime.rack_builds"
    }


def test_steady_state_phase_latency(benchmark):
    def run():
        serial = _phase_train("per-run", shards=1)
        per_run = _phase_train("per-run")
        keep = _phase_train("keep")
        return serial, per_run, keep

    serial, per_run, keep = run_once(benchmark, run)
    serial_reports, _, serial_wall = serial
    per_run_reports, _, per_run_wall = per_run
    keep_reports, keep_registry, keep_wall = keep
    speedup = per_run_wall / keep_wall
    builds = _rack_builds(keep_registry)

    lines = [
        "steady-state phase latency — persistent worker runtime vs "
        "per-run pools",
        f"{PHASES} consecutive phases, {len(SLOS)} chains x "
        f"{PACKETS} packets, {SHARDS} shards",
        "",
        f"{'mode':24s} {'total':>9s} {'per phase':>11s} {'vs per-run':>11s}",
        f"{'single process':24s} {serial_wall:8.3f}s "
        f"{1000 * serial_wall / PHASES:9.2f}ms "
        f"{per_run_wall / serial_wall:10.2f}x",
        f"{'per-run pool':24s} {per_run_wall:8.3f}s "
        f"{1000 * per_run_wall / PHASES:9.2f}ms {'1.00x':>11s}",
        f"{'persistent pool':24s} {keep_wall:8.3f}s "
        f"{1000 * keep_wall / PHASES:9.2f}ms {speedup:10.2f}x",
        "",
        "warm rack reuse: "
        + ", ".join(f"{mode}={count}"
                    for mode, count in sorted(builds.items())),
    ]
    record_result("steady_state", "\n".join(lines))

    # identical delivery outcomes, phase for phase, across all three modes
    assert keep_reports == per_run_reports == serial_reports

    # the persistent pool deployed cold once, then reused warm racks
    assert builds.get("cold", 0) >= 1
    assert builds.get("warm", 0) >= PHASES - 1

    # reproduction target: >= 5x over the per-run pool on the phase train
    assert speedup >= 5.0
