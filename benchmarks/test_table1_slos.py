"""E16: Table 1 — the SLO vocabulary's operator use cases, end to end.

Each Table 1 row is expressed as an SLO, classified, placed by Lemur, and
checked: the placement guarantees at least t_min and the rate LP never
assigns above t_max (bursts are capped at the contract).
"""

import math

from conftest import record_result, run_once

from repro.chain.graph import chains_from_spec
from repro.chain.slo import (
    SLOUseCase,
    bulk,
    elastic_pipe,
    infinite_pipe,
    metered_bulk,
    virtual_pipe,
)
from repro.core.heuristic import heuristic_place
from repro.hw.topology import default_testbed
from repro.units import gbps

CASES = [
    ("bulk", bulk(), SLOUseCase.BULK),
    ("metered bulk", metered_bulk(gbps(2)), SLOUseCase.METERED_BULK),
    ("virtual pipe", virtual_pipe(gbps(3)), SLOUseCase.VIRTUAL_PIPE),
    ("elastic pipe", elastic_pipe(gbps(2), gbps(10)),
     SLOUseCase.ELASTIC_PIPE),
    ("infinite pipe", infinite_pipe(gbps(2)), SLOUseCase.INFINITE_PIPE),
]


def test_table1_use_cases(benchmark, profiles):
    def run():
        rows = []
        for name, slo, expected in CASES:
            chains = chains_from_spec(
                "chain t1: ACL -> Encrypt -> IPv4Fwd", slos=[slo]
            )
            placement = heuristic_place(chains, default_testbed(), profiles)
            rows.append((name, slo, expected, placement))
        return rows

    rows = run_once(benchmark, run)
    lines = [f"{'use case':<14} {'t_min':>8} {'t_max':>9} {'rate':>9}"]
    for name, slo, expected, placement in rows:
        assert slo.use_case is expected
        assert placement.feasible
        rate = placement.rates["t1"]
        assert rate >= slo.t_min - 1e-6
        if not math.isinf(slo.t_max):
            assert rate <= slo.t_max + 1e-6
        tmax = "inf" if math.isinf(slo.t_max) else f"{slo.t_max:.0f}"
        lines.append(f"{name:<14} {slo.t_min:8.0f} {tmax:>9} {rate:9.0f}")
    record_result("table1", "\n".join(lines))

    # the virtual pipe gets *exactly* its contract
    virtual = next(r for r in rows if r[0] == "virtual pipe")
    assert virtual[3].rates["t1"] == virtual[1].t_min
