"""Dataplane throughput: batched fast path vs the per-packet path.

Deploys a Fig-2-style testbed (two BESS servers + SmartNIC behind the
ToR) and pushes the same high-volume flow set through the rack three
ways:

* **seed per-packet** — ``DeployedRack.inject`` as it existed at the
  seed commit, run in a subprocess against a throwaway git worktree
  (skipped silently when the commit is not available, e.g. shallow CI
  clones);
* **per-packet** — ``DeployedRack.inject`` from this tree (which already
  benefits from the shared flow-classification and parse caches);
* **batched** — the :class:`~repro.sim.traffic.TrafficEngine` driving
  ``DeployedRack.inject_batch``;
* **vectorized** — the same engine with ``vectorized=True``, driving the
  columnar ``DeployedRack.run_columns`` fast path (structure-of-arrays
  batches, whole-array hop replay).

All paths are behaviourally identical
(``tests/sim/test_batch_equivalence.py`` enforces bit-identical results);
this benchmark records how much cheaper each tier is per packet.
Reproduction targets: batched throughput >= 5x the seed per-packet path;
vectorized throughput >= 10x the batched path on the same machine.

``DATAPLANE_BENCH_PACKETS`` overrides the packet budget (CI smoke runs
use a small one).
"""

import os
import pathlib
import subprocess
import sys
import tempfile
import time

from conftest import record_result, run_once

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.topology import default_testbed
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.sim.traffic import TrafficEngine
from repro.units import gbps

#: The chain and testbed mirror Fig. 2's SmartNIC panel: an offloadable
#: chain pinned to the NIC by its throughput SLO.
SPEC = "chain a: BPF -> FastEncrypt -> IPv4Fwd"
SLO_BOUNDS = SLO(t_min=gbps(1), t_max=gbps(39))
FLOWS = 64
BATCH = 256
PACKETS = int(os.environ.get("DATAPLANE_BENCH_PACKETS", "4000"))
#: Untimed prelude so small CI budgets measure steady state, not the
#: one-off cache/table warmup every path pays on its first packets.
WARMUP = min(256, max(BATCH, PACKETS // 4))
#: The columnar tier amortises per-hop work over the whole batch, so it
#: runs a 10x packet budget in wide batches to measure steady state.
VEC_PACKETS = 10 * PACKETS
VEC_BATCH = 4096

#: Pre-PR commit of this repository: the per-packet dataplane without the
#: batch fast path or any of its caches. Measured live when the commit is
#: reachable so the speedup is from this machine, not a stale constant.
SEED_COMMIT = "610fc1ca401ad84c781d48cf648ef5597d46fc88"

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_SEED_RUNNER = """\
import sys, time
sys.path.insert(0, sys.argv[1])
from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.topology import default_testbed
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps

packets, flows, warmup = int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
profiles = default_profiles()
topology = default_testbed(with_smartnic=True)
chains = chains_from_spec({spec!r}, slos=[SLO(t_min=gbps(1), t_max=gbps(39))])
placement = heuristic_place(chains, topology, profiles)
assert placement.feasible, placement.infeasible_reason
artifacts = MetaCompiler(topology=topology, profiles=profiles).compile_placement(placement)
rack = DeployedRack(topology, artifacts, profiles)
cp = placement.chains[0]
for i in range(warmup):
    rack.inject(cp, _chain_packet(cp.chain, i % flows))
pkts = [_chain_packet(cp.chain, i % flows) for i in range(packets)]
t0 = time.perf_counter()
for p in pkts:
    rack.inject(cp, p)
print("pps=%.1f" % (packets / (time.perf_counter() - t0)))
"""


def _deploy():
    profiles = default_profiles()
    topology = default_testbed(with_smartnic=True)
    chains = chains_from_spec(SPEC, slos=[SLO_BOUNDS])
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    artifacts = MetaCompiler(
        topology=topology, profiles=profiles
    ).compile_placement(placement)
    rack = DeployedRack(topology, artifacts, profiles)
    return rack, placement


def _measure_seed_pps():
    """Per-packet throughput of the seed dataplane, or None if the seed
    commit cannot be materialised (no git, shallow clone, ...)."""
    with tempfile.TemporaryDirectory(prefix="seed-dataplane-") as tmp:
        tree = pathlib.Path(tmp) / "tree"
        try:
            subprocess.run(
                ["git", "-C", str(REPO_ROOT), "worktree", "add",
                 "--detach", str(tree), SEED_COMMIT],
                check=True, capture_output=True, timeout=120,
            )
            runner = pathlib.Path(tmp) / "runner.py"
            runner.write_text(_SEED_RUNNER.format(spec=SPEC))
            proc = subprocess.run(
                [sys.executable, str(runner), str(tree / "src"),
                 str(PACKETS), str(FLOWS), str(WARMUP)],
                check=True, capture_output=True, text=True, timeout=600,
            )
            for line in proc.stdout.splitlines():
                if line.startswith("pps="):
                    return float(line.split("=", 1)[1])
            return None
        except (subprocess.SubprocessError, OSError, ValueError):
            return None
        finally:
            subprocess.run(
                ["git", "-C", str(REPO_ROOT), "worktree", "remove",
                 "--force", str(tree)],
                capture_output=True, timeout=120,
            )


def _measure_serial_pps():
    rack, placement = _deploy()
    cp = placement.chains[0]
    for i in range(WARMUP):
        rack.inject(cp, _chain_packet(cp.chain, i % FLOWS))
    pkts = [_chain_packet(cp.chain, i % FLOWS) for i in range(PACKETS)]
    t0 = time.perf_counter()
    for p in pkts:
        rack.inject(cp, p)
    return PACKETS / (time.perf_counter() - t0)


def _measure_batched():
    rack, placement = _deploy()
    engine = TrafficEngine(
        rack, placement, flows_per_chain=FLOWS, batch_size=BATCH
    )
    engine.run(packets_per_chain=WARMUP)
    report = engine.run(packets_per_chain=PACKETS)
    return report


def _measure_vectorized():
    rack, placement = _deploy()
    engine = TrafficEngine(
        rack, placement, flows_per_chain=FLOWS, batch_size=VEC_BATCH,
        vectorized=True,
    )
    engine.run(packets_per_chain=VEC_BATCH)
    report = engine.run(packets_per_chain=VEC_PACKETS)
    return report


def test_dataplane_throughput(benchmark):
    def run():
        seed_pps = _measure_seed_pps()
        serial_pps = _measure_serial_pps()
        report = _measure_batched()
        vec_report = _measure_vectorized()
        return seed_pps, serial_pps, report, vec_report

    seed_pps, serial_pps, report, vec_report = run_once(benchmark, run)
    batched_pps = report.achieved_pps
    chain = report.chains[0]
    vectorized_pps = vec_report.achieved_pps
    vec_chain = vec_report.chains[0]

    lines = [
        "dataplane throughput — Fig-2-style testbed (SmartNIC), "
        f"chain {SPEC.split(':')[0].split()[1]!r}: "
        f"{SPEC.split(':', 1)[1].strip()}",
        f"packets={PACKETS} flows={FLOWS} batch={BATCH}",
        "",
        f"{'path':24s} {'pps':>10s} {'vs seed':>9s} {'vs per-packet':>14s}",
    ]
    if seed_pps is not None:
        lines.append(
            f"{'seed per-packet':24s} {seed_pps:10.0f} {'1.00x':>9s} "
            f"{seed_pps / serial_pps:13.2f}x"
        )
    lines.append(
        f"{'per-packet (this tree)':24s} {serial_pps:10.0f} "
        + (f"{serial_pps / seed_pps:8.2f}x " if seed_pps is not None
           else f"{'n/a':>9s} ")
        + f"{'1.00x':>14s}"
    )
    lines.append(
        f"{'batched (this tree)':24s} {batched_pps:10.0f} "
        + (f"{batched_pps / seed_pps:8.2f}x " if seed_pps is not None
           else f"{'n/a':>9s} ")
        + f"{batched_pps / serial_pps:13.2f}x"
    )
    lines.append(
        f"{'vectorized (this tree)':24s} {vectorized_pps:10.0f} "
        + (f"{vectorized_pps / seed_pps:8.2f}x " if seed_pps is not None
           else f"{'n/a':>9s} ")
        + f"{vectorized_pps / serial_pps:13.2f}x"
    )
    lines += [
        "",
        f"vectorized tier: packets={VEC_PACKETS} batch={VEC_BATCH}, "
        f"{vectorized_pps / batched_pps:.2f}x the batched path",
        f"delivered {chain.delivered}/{chain.injected} "
        f"({100 * chain.delivered_fraction:.1f}%), "
        f"assigned rate {chain.assigned_mbps:.0f} Mbps",
    ]
    record_result("dataplane_throughput", "\n".join(lines))

    # every injected packet must come out the other end, on every tier
    assert chain.delivered == chain.injected
    assert vec_chain.delivered == vec_chain.injected == VEC_PACKETS

    # the batched path must beat the per-packet path outright
    assert batched_pps > 1.25 * serial_pps

    # reproduction target: the columnar tier is >= 10x the batched path
    # (same machine, same run), which puts it >= 10x the recorded 40.3k
    # pps baseline on the reference box
    assert vectorized_pps >= 10 * batched_pps

    # reproduction target: >= 5x the seed per-packet dataplane (only
    # checkable when the seed commit is reachable)
    if seed_pps is not None:
        assert batched_pps >= 5 * seed_pps
