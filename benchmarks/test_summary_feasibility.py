"""E17: §5.2 comparison summary.

"Across all experiments, Lemur can always find a feasible solution while
other approaches only do 17-76% of the time. Moreover, overall, Lemur
obtains a marginal throughput lead ranging from 500 Mbps to nearly
24 Gbps (at the latter end, more than 50% of link capacity)."

Reproduction targets over all five panels: Lemur feasible in every cell
where *any* scheme is feasible; every competitor lands in a clearly lower
feasibility band; and Lemur's maximum marginal lead exceeds 50% of the
40 Gbps server-link capacity.
"""

from conftest import record_result, run_once

from repro.experiments.runner import run_delta_sweep
from repro.experiments.schemes import SCHEMES
from repro.units import gbps

PANELS = [(1, 2, 3, 4), (1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
DELTAS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
FAST_SCHEMES = {k: v for k, v in SCHEMES.items() if k != "Optimal"}


def test_summary(benchmark, profiles):
    def run():
        return [
            run_delta_sweep(panel, deltas=DELTAS, schemes=FAST_SCHEMES,
                            profiles=profiles, measure=False)
            for panel in PANELS
        ]

    sweeps = run_once(benchmark, run)

    # feasibility fractions relative to the cells Lemur can solve
    lemur_cells = 0
    feasible_counts = {name: 0 for name in FAST_SCHEMES}
    max_lead = 0.0
    for sweep in sweeps:
        for cell in sweep.for_scheme("Lemur"):
            if cell.feasible:
                lemur_cells += 1
        for name in FAST_SCHEMES:
            feasible_counts[name] += sum(
                1 for c in sweep.for_scheme(name) if c.feasible
            )
        max_lead = max(max_lead, sweep.max_marginal_lead_mbps("Lemur"))

    rows = [f"Lemur-solvable cells: {lemur_cells} / "
            f"{len(PANELS) * len(DELTAS)}"]
    for name, count in feasible_counts.items():
        share = count / lemur_cells
        rows.append(f"{name:<14} feasible in {count} cells "
                    f"({share:.0%} of Lemur's)")
    rows.append(f"max marginal lead: {max_lead / 1000:.2f} Gbps "
                f"({max_lead / gbps(40):.0%} of the 40G link)")
    record_result("summary_feasibility", "\n".join(rows))

    # Lemur always solvable where anyone is (checked per-cell too)
    for sweep in sweeps:
        for cell in sweep.results:
            if cell.feasible and cell.scheme != "Lemur":
                lemur = next(
                    c for c in sweep.for_scheme("Lemur")
                    if c.delta == cell.delta
                )
                assert lemur.feasible

    # competitors in a visibly lower feasibility band (paper: 17-76%)
    for name, count in feasible_counts.items():
        if name == "Lemur":
            continue
        assert count / lemur_cells <= 0.9

    # the headline lead: more than 50% of the 40G link capacity
    assert max_lead > 0.5 * gbps(40)
