"""E18: §5.3 — the cost of flexible NF-chain composition.

"We have to burn two P4 stages, one each to encapsulate and decapsulate
packets. Our BESS cycle cost overheads for these are modest at about 220
cycles. The server also incurs about 180 cycles to load-balance packets
when a subgroup is allocated to multiple cores."

Reproduction targets: a platform-spanning chain adds exactly the two NSH
tables to the P4 pipeline; the BESS NSH path charges ~220 cycles per
packet; the demux charges ~180 cycles per packet once a subgroup is
replicated; and these overheads are a small fraction of NF cycle costs.
"""

import pytest

from conftest import record_result, run_once

from repro.bess.nsh_modules import NSHDecap, NSHEncap, SubgroupDemux
from repro.chain.graph import chains_from_spec
from repro.net.packet import Packet
from repro.p4c.compiler import PISACompiler
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    NSH_ENCAP_DECAP_CYCLES,
)


def test_p4_nsh_tables(benchmark, profiles):
    all_switch = chains_from_spec("chain c: ACL -> Tunnel -> IPv4Fwd")[0]
    spanning = chains_from_spec(
        "chain c: ACL -> Encrypt -> Tunnel -> IPv4Fwd"
    )[0]
    span_ids = {
        nid for nid in spanning.graph.nodes
        if spanning.graph.nodes[nid].nf_class != "Encrypt"
    }

    def run():
        compiler = PISACompiler()
        a = compiler.compile([(all_switch.graph,
                               set(all_switch.graph.nodes))])
        b = compiler.compile([(spanning.graph, span_ids)])
        return a, b

    local, remote = run_once(benchmark, run)
    extra_tables = len(remote.dag.tables) - len(local.dag.tables)
    record_result(
        "codegen_overhead_p4",
        f"NSH composition cost: +{extra_tables} P4 tables "
        f"(encap + decap), pipeline {local.stage_count} -> "
        f"{remote.stage_count} stages",
    )
    assert extra_tables == 2
    assert remote.uses_nsh and not local.uses_nsh


def test_bess_cycle_overheads(benchmark, profiles):
    def measure():
        pkt = Packet.build(payload=b"x" * 64)
        encap = NSHEncap("e", params={"spi": 1, "si": 255})
        decap = NSHDecap("d")
        before = pkt.metadata.cycles_consumed
        (_, pkt2), = encap.receive(pkt)
        (_, pkt3), = decap.receive(pkt2)
        nsh_cost = pkt3.metadata.cycles_consumed - before

        demux = SubgroupDemux("x")
        demux.register(1, 255, instances=4)
        pkt4 = Packet.build()
        pkt4.metadata.spi, pkt4.metadata.si = 1, 255
        before = pkt4.metadata.cycles_consumed
        demux.receive(pkt4)
        demux_cost = pkt4.metadata.cycles_consumed - before
        return nsh_cost, demux_cost

    nsh_cost, demux_cost = run_once(benchmark, measure)
    record_result(
        "codegen_overhead_bess",
        f"NSH encap+decap: {nsh_cost} cycles (paper: ~220)\n"
        f"replicated-subgroup demux LB: {demux_cost} cycles (paper: ~180)",
    )
    assert nsh_cost == NSH_ENCAP_DECAP_CYCLES
    assert demux_cost == DEMUX_LB_CYCLES
    # small fraction of real NF costs (e.g. Encrypt ~9k cycles)
    assert nsh_cost < 0.05 * profiles.server_cycles("Encrypt")
