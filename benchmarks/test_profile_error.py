"""E12: §5.2 — sensitivity to profiling errors.

"We conducted an experiment in which we reduced the profiled costs by a
fraction, ranging from 1% to 10%, mimicking errors in profiling. We found
that, even with these errors, Lemur produces a configuration with the same
aggregate marginal throughput as the baseline, up to 8% errors."

We make placement decisions with under-estimated profiles, then *measure*
each decided configuration on the simulated testbed (true profiles) — the
same way the paper's testbed would absorb the error — and compare the
measured aggregate marginal against the error-free baseline.
"""

import pytest

from conftest import record_result, run_once

from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta
from repro.hw.topology import default_testbed
from repro.sim.testbed import TestbedSimulator

ERRORS = (0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10)


def _config_signature(placement):
    sig = []
    for cp in placement.chains:
        assignment = tuple(sorted(
            (nid, str(a)) for nid, a in cp.assignment.items()
        ))
        cores = tuple(sorted((sg.sg_id, sg.cores) for sg in cp.subgroups))
        sig.append((cp.name, assignment, cores))
    return tuple(sig)


def test_profile_error_sensitivity(benchmark, profiles):
    # δ=1.25 keeps the baseline off a core-count knife edge (δ=1.0 puts
    # a subgroup exactly at a ceil boundary, where any error flips it)
    chains = chains_with_delta([1, 2, 3], delta=1.25, profiles=profiles)
    topology = default_testbed()
    sim = TestbedSimulator(topology=topology, profiles=profiles, seed=5)

    def run():
        results = {}
        for error in ERRORS:
            erroneous = profiles.with_error(-error)
            decided = heuristic_place(chains, topology, erroneous)
            assert decided.feasible, f"error {error}: placement failed"
            report = sim.run(decided)
            results[error] = (decided, report)
        return results

    results = run_once(benchmark, run)
    base_placement, base_report = results[0.0]
    base_marginal = base_report.aggregate_marginal_mbps
    base_sig = _config_signature(base_placement)

    rows = []
    stable_up_to = 0.0
    for error in ERRORS:
        decided, report = results[error]
        same_config = _config_signature(decided) == base_sig
        marginal = report.aggregate_marginal_mbps
        rows.append(
            f"error {error:4.0%}: measured marginal {marginal:8.0f} Mbps "
            f"(config {'unchanged' if same_config else 'CHANGED'})"
        )
        if abs(marginal - base_marginal) <= 0.02 * base_marginal:
            stable_up_to = max(stable_up_to, error)
    record_result("profile_error", "\n".join(rows))

    # the paper found the same marginal throughput up to 8% error
    assert stable_up_to >= 0.08
    # and tiny errors must not change the configuration at all
    assert _config_signature(results[0.01][0]) == base_sig
