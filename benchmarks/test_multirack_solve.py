"""Hierarchical fabric solve vs a monolithic flat solve (multi-rack).

The comparison the hierarchical placer exists for: place ``6 x R``
chains on an R-rack star fabric via partition-then-place, against a
*monolithic* alternative — one flat rack given the same aggregate
server capacity (R servers behind a single ToR) and all chains in one
``Placer.solve``.

Two effects, both recorded:

* **time** — the hierarchical solve decomposes into R small per-rack
  problems and scales roughly linearly with racks, while the flat
  heuristic's coalescing search over one giant rack grows superlinearly
  (an order of magnitude slower by 8 racks);
* **feasibility** — past a few racks the monolithic rack goes
  infeasible outright: a single PISA switch's stages and ports cannot
  host the whole fabric's chains no matter how many servers stand
  behind it, which is the capacity argument for multi-rack placement.
"""

import time

from conftest import record_result, run_once

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.hierarchy import MultiRackPlacer
from repro.core.placer import Placer, PlacementRequest
from repro.hw.spec import RackSpec, TopologySpec

RACK_COUNTS = (2, 4, 6, 8)
CHAINS_PER_RACK = 6


def _chains(n):
    spec = "\n".join(
        f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd"
        for i in range(n)
    )
    return chains_from_spec(
        spec,
        slos=[SLO(t_min=1000.0, t_max=9000.0, d_max=400.0)
              for _ in range(n)],
    )


def _measure(racks):
    chains = _chains(CHAINS_PER_RACK * racks)

    fabric = TopologySpec.star(racks).build()
    started = time.perf_counter()
    hier = MultiRackPlacer(fabric=fabric).solve(
        PlacementRequest.multi_rack(chains=chains, jobs=1)
    )
    hier_seconds = time.perf_counter() - started

    flat_topology = TopologySpec(
        racks=(RackSpec(servers=racks),)
    ).build()
    started = time.perf_counter()
    flat = Placer(topology=flat_topology).solve(
        PlacementRequest(chains=chains)
    )
    flat_seconds = time.perf_counter() - started

    return {
        "racks": racks,
        "chains": CHAINS_PER_RACK * racks,
        "hier_seconds": hier_seconds,
        "hier_feasible": hier.placement.feasible,
        "flat_seconds": flat_seconds,
        "flat_feasible": flat.placement.feasible,
    }


def test_hierarchical_beats_monolithic_flat_solve(benchmark):
    results = run_once(
        benchmark, lambda: [_measure(racks) for racks in RACK_COUNTS]
    )

    rows = []
    for entry in results:
        speedup = entry["flat_seconds"] / entry["hier_seconds"]
        rows.append(
            f"racks={entry['racks']} chains={entry['chains']:3d}  "
            f"hierarchical={entry['hier_seconds'] * 1e3:8.1f} ms "
            f"(feasible={entry['hier_feasible']})  "
            f"flat={entry['flat_seconds'] * 1e3:8.1f} ms "
            f"(feasible={entry['flat_feasible']})  "
            f"speedup={speedup:5.1f}x"
        )
    record_result("multirack_solve", "\n".join(rows))

    # the fabric admits every scale
    assert all(entry["hier_feasible"] for entry in results)
    # one ToR stops being enough: the monolithic rack goes infeasible
    assert not results[-1]["flat_feasible"]
    # and even while failing, the flat search is much slower at scale
    largest = results[-1]
    assert largest["flat_seconds"] > 3.0 * largest["hier_seconds"]
