"""Extension bench: the MILP's conservative stage model strands resources.

§3.2 explains why Lemur does not place with an off-the-shelf MILP: solvers
cannot invoke the hardware compiler, and "we could have modeled the PISA
switch placement conservatively, but this would have resulted in stranded
resources". This bench constructs a workload where the distinction bites:
many NAT chains whose tables *do* fit the real (simulated) compiler's
packing but exceed the MILP's per-NF stage estimates, forcing the MILP to
push NATs into software and lose marginal throughput.
"""

from conftest import record_result, run_once

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.core.milp import milp_place
from repro.hw.platform import Platform
from repro.hw.topology import default_testbed
from repro.units import gbps

N_CHAINS = 8


def _chains():
    spec = "\n".join(
        f"chain nat{i}: NAT -> IPv4Fwd" for i in range(N_CHAINS)
    )
    return chains_from_spec(
        spec, slos=[SLO(t_min=100.0, t_max=gbps(100))] * N_CHAINS
    )


def _nats_on_switch(placement):
    return sum(
        1 for cp in placement.chains
        for nid, a in cp.assignment.items()
        if a.platform is Platform.PISA
        and cp.chain.graph.nodes[nid].nf_class == "NAT"
    )


def test_milp_strands_switch_resources(benchmark, profiles):
    chains = _chains()
    topo = default_testbed()

    def run():
        return (
            milp_place(chains, topo, profiles),
            heuristic_place(chains, topo, profiles),
        )

    milp, lemur = run_once(benchmark, run)
    assert milp.feasible and lemur.feasible

    milp_nats = _nats_on_switch(milp)
    lemur_nats = _nats_on_switch(lemur)
    record_result(
        "milp_stranding",
        f"{N_CHAINS} NAT chains: NATs on switch — MILP {milp_nats}, "
        f"compiler-checked heuristic {lemur_nats}\n"
        f"marginal — MILP {milp.objective_mbps:.0f} Mbps, "
        f"heuristic {lemur.objective_mbps:.0f} Mbps",
    )

    # the compiler-checked heuristic offloads every NAT; the MILP's
    # conservative stage arithmetic refuses some of them
    assert lemur_nats == N_CHAINS
    assert milp_nats < lemur_nats
    assert lemur.objective_mbps >= milp.objective_mbps
