"""E14: §5.3 — meta-compiler benefit: auto-generated lines of code.

"For NF chains {1, 2, 3, 4} more than a third of the total code (about
820 out of 1700 lines) is auto-generated, with most of the auto-generated
code (600 lines) providing packet steering."

Reproduction targets: auto fraction > 1/3 with steering the majority of
generated code, at a total magnitude comparable to the paper's (~1-2k
lines for the four canonical chains).
"""

from conftest import record_result, run_once

from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta
from repro.hw.topology import default_testbed
from repro.metacompiler.compiler import MetaCompiler


def test_codegen_loc(benchmark, profiles):
    chains = chains_with_delta([1, 2, 3, 4], delta=0.5, profiles=profiles)
    topology = default_testbed()
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible
    meta = MetaCompiler(topology=topology, profiles=profiles)

    artifacts = run_once(benchmark,
                         lambda: meta.compile_placement(placement))
    stats = artifacts.stats
    record_result("codegen_loc", stats.report())

    assert stats.auto_fraction > 1 / 3
    assert stats.steering_fraction_of_auto > 0.5
    assert 800 <= stats.total_lines <= 3000
    assert stats.per_platform.get("p4", 0) > \
        stats.per_platform.get("bess", 0)  # P4 codegen dominates (§5.1)
