#!/usr/bin/env python
"""CI smoke test for the multi-rack fabric.

Drives the proven two-rack lifecycle recipe end to end against
``FabricAdmissionCore`` and asserts every fabric-only behaviour in one
seeded, deterministic run:

* bootstrap spills the 6-chain set across both racks;
* two more arrivals fill the ingress rack to its true capacity;
* the next arrival **spills** to the satellite rack;
* scaling an ingress chain past what the rack can absorb **migrates**
  it (decision mode ``migrate:r0->r1``);
* a steady traffic phase meets every rate and latency SLO, with remote
  chains visibly paying the 100 µs inter-rack RTT;
* the final chain set is **infeasible on a single rack** — the fabric
  holds strictly more than one rack can.

Writes a JSON document (``--out``) for CI artifact upload.

Run from the repo root:

    PYTHONPATH=src python scripts/multirack_smoke.py --out report.json
"""

import argparse
import json
import sys

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.placer import Placer, PlacementRequest
from repro.hw.spec import topology_for
from repro.obs import MetricsRegistry
from repro.sim.admission import ChainEvent
from repro.sim.interrack import FabricAdmissionCore

RTT_US = 100.0  # two-rack preset: 2 x 50 µs one-way


def _chains(n, t_min=4000.0):
    spec = "\n".join(
        f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd" for i in range(n)
    )
    return chains_from_spec(
        spec, slos=[SLO(t_min=t_min, t_max=9000.0, d_max=400.0)
                    for _ in range(n)]
    )


def _arrive(name, at):
    return ChainEvent(
        at=at, action="arrive", chain=name,
        spec=f"chain {name}: ACL(rules=64) -> Encrypt -> IPv4Fwd",
        t_min_mbps=4000.0, t_max_mbps=9000.0, d_max_us=400.0,
    )


def check(ok, label, detail=""):
    if ok:
        print(f"ok: {label}")
        return 0
    print(f"FAIL: {label}" + (f" — {detail}" if detail else ""))
    return 1


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="multirack-report.json")
    args = parser.parse_args()

    failures = 0
    registry = MetricsRegistry()
    core = FabricAdmissionCore(
        _chains(6), topology=topology_for("two-rack").build(),
        flows_per_chain=8, batch_size=16, seed=7, registry=registry,
    )
    core.bootstrap()
    failures += check(
        set(core.assignment.values()) == {"r0", "r1"},
        "bootstrap spills the 6-chain set across both racks",
        f"assignment={core.assignment}",
    )

    # fill r0 to its true capacity (7 chains of this shape)
    decisions = []
    for tick, name in enumerate(("c6", "c7"), start=1):
        decision = core.process(_arrive(name, at=tick))
        decisions.append((name, decision))
        failures += check(
            decision.accepted and core.assignment[name] == "r0",
            f"arrival {name} lands on the ingress rack",
            decision.reason,
        )

    spill = core.process(_arrive("c8", at=3))
    decisions.append(("c8", spill))
    failures += check(
        spill.accepted and core.assignment["c8"] == "r1",
        "arrival past ingress capacity spills to r1",
        spill.reason,
    )
    failures += check(
        core.obs.counter_value("lifecycle.spills") >= 1,
        "lifecycle.spills recorded the spill",
    )

    migrate = core.process(ChainEvent(
        at=4, action="scale", chain="c1", t_min_mbps=12000.0,
    ))
    decisions.append(("c1", migrate))
    failures += check(
        migrate.accepted and migrate.mode == "migrate:r0->r1"
        and core.assignment["c1"] == "r1",
        "scaling c1 past r0's headroom migrates it to r1",
        f"mode={migrate.mode} reason={migrate.reason}",
    )
    failures += check(
        core.obs.counter_value("lifecycle.migrations") == 1,
        "lifecycle.migrations recorded the move",
    )

    phase = core.run_phase("steady", 96, index=0)
    rows = sorted(phase.chains, key=lambda row: row.chain_name)
    misses = [row.chain_name for row in rows if not phase.slo_met(row)]
    failures += check(
        not misses, "every chain meets rate + latency SLOs in steady state",
        f"violations={misses}",
    )
    remote = [row for row in rows if core.assignment[row.chain_name] == "r1"]
    failures += check(
        remote and all(row.latency_p99_us >= RTT_US for row in remote),
        "remote chains visibly pay the inter-rack RTT",
        f"remote p99s={[(r.chain_name, r.latency_p99_us) for r in remote]}",
    )
    failures += check(
        all(row.latency_slo_us == 400.0 for row in rows),
        "phase rows restore the end-to-end d_max",
    )

    # the headline: this chain set does not fit a single paper rack
    final = _chains(9)
    flat = Placer().solve(PlacementRequest(chains=final)).placement
    failures += check(
        not flat.feasible,
        "the fabric's final 9-chain set is infeasible on one rack",
        "flat solve unexpectedly feasible",
    )

    payload = {
        "assignment": dict(sorted(core.assignment.items())),
        "decisions": [
            {"chain": name, "accepted": d.accepted, "mode": d.mode,
             "reason": d.reason}
            for name, d in decisions
        ],
        "spills": core.obs.counter_value("lifecycle.spills"),
        "migrations": core.obs.counter_value("lifecycle.migrations"),
        "phase": [
            {"chain": row.chain_name,
             "injected": row.injected,
             "delivered": row.delivered,
             "delivered_mbps": round(row.delivered_mbps, 3),
             "latency_p99_us": round(row.latency_p99_us, 3),
             "latency_slo_us": row.latency_slo_us,
             "slo_met": phase.slo_met(row)}
            for row in rows
        ],
        "flat_solve_feasible": flat.feasible,
        "state_digest": core.state_digest(),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"report written to {args.out}")

    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("OK: fabric spill, migration, SLO compliance, and "
          "single-rack infeasibility all verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
