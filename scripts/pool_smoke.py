#!/usr/bin/env python
"""CI smoke test for the persistent dataplane worker runtime.

Runs the equivalent of ``repro traffic examples/specs/pop.lemur
--vectorized --shards 2 --pool keep`` twice *in one process* — the
regime the persistent pool exists for — and asserts the warm-rack
contract:

* phase 1 deploys its racks cold (``runtime.rack_builds{mode=cold}``);
* phase 2 finds them warm (``runtime.rack_builds{mode=warm}``) because
  the pool, its workers, and their cached racks survived the first run;
* both phases report byte-identical delivery outcomes.

Run from the repo root:

    PYTHONPATH=src python scripts/pool_smoke.py
"""

import json
import sys

from repro.obs import MetricsRegistry
from repro.runtime.pool import shutdown_pool
from repro.sim.traffic import TrafficSpec, run_traffic

SPEC_PATH = "examples/specs/pop.lemur"


def run_phase(spec_text: str):
    registry = MetricsRegistry()
    report = run_traffic(
        TrafficSpec(
            spec_text=spec_text,
            slos=((1.0, 20.0), (1.0, 20.0)),
            packets_per_chain=256,
            flows_per_chain=16,
            batch_size=64,
            vectorized=True,
            shards=2,
            pool="keep",
        ),
        registry=registry,
    )
    builds = {
        counter["labels"]["mode"]: counter["value"]
        for counter in registry.snapshot()["counters"]
        if counter["name"] == "runtime.rack_builds"
    }
    return report.to_json(), builds


def main() -> int:
    with open(SPEC_PATH) as fh:
        spec_text = fh.read()

    shutdown_pool()
    try:
        first, first_builds = run_phase(spec_text)
        print(f"phase 1 rack builds: {first_builds}")
        second, second_builds = run_phase(spec_text)
        print(f"phase 2 rack builds: {second_builds}")
    finally:
        shutdown_pool()

    if first_builds.get("cold", 0) < 1:
        print("FAIL: phase 1 never deployed a rack cold "
              "(did the pooled path fall back?)")
        return 1
    if second_builds.get("warm", 0) < 1:
        print("FAIL: phase 2 reports no warm rack hit — the persistent "
              "pool did not reuse phase 1's racks")
        return 1
    if second_builds.get("cold", 0) != 0:
        print("FAIL: phase 2 deployed a rack cold; expected warm reuse "
              f"only, got {second_builds}")
        return 1
    if json.dumps(first, sort_keys=True) != json.dumps(second,
                                                       sort_keys=True):
        print("FAIL: phases disagree on delivery outcomes")
        return 1
    print("OK: second phase reused warm racks with identical reports")
    return 0


if __name__ == "__main__":
    sys.exit(main())
