#!/usr/bin/env python
"""CI lint check for the topology-spec wire format.

Three invariants, dependency-free (no jsonschema package):

* the published ``TopologySpec.json_schema()`` mirrors the wire fields
  the parser actually accepts (``_TOP_FIELDS``/``_RACK_FIELDS``/
  ``_LINK_FIELDS``) — a field added to one side but not the other is a
  schema drift and fails here before it fails a user;
* every named preset's wire form validates against the schema and
  round-trips byte-identically through ``to_json``/``parse_json``;
* every committed example document under ``examples/topologies/``
  validates, parses, and builds.

Run from the repo root:

    PYTHONPATH=src python scripts/check_topology_schema.py
"""

import json
import pathlib
import sys

from repro.hw.spec import TopologySpec, available_topologies, topology_for

EXAMPLES = pathlib.Path("examples/topologies")


def validate(payload, schema, where):
    """Minimal JSON-schema walk covering the subset json_schema() emits."""
    errors = []

    def walk(value, node, path):
        kind = node.get("type")
        if kind == "object":
            if not isinstance(value, dict):
                errors.append(f"{path}: expected object")
                return
            props = node.get("properties", {})
            if not node.get("additionalProperties", True):
                for key in set(value) - set(props):
                    errors.append(f"{path}: unknown field {key!r}")
            for key in node.get("required", ()):
                if key not in value:
                    errors.append(f"{path}: missing required {key!r}")
            for key, sub in props.items():
                if key in value:
                    walk(value[key], sub, f"{path}.{key}")
        elif kind == "array":
            if not isinstance(value, list):
                errors.append(f"{path}: expected array")
                return
            if len(value) < node.get("minItems", 0):
                errors.append(f"{path}: fewer than "
                              f"{node['minItems']} items")
            for i, item in enumerate(value):
                walk(item, node.get("items", {}), f"{path}[{i}]")
        elif kind == "integer":
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"{path}: expected integer")
            elif value < node.get("minimum", value):
                errors.append(f"{path}: below minimum {node['minimum']}")
        elif kind == "number":
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                errors.append(f"{path}: expected number")
            else:
                if value < node.get("minimum", value):
                    errors.append(
                        f"{path}: below minimum {node['minimum']}")
                if "exclusiveMinimum" in node \
                        and value <= node["exclusiveMinimum"]:
                    errors.append(f"{path}: must exceed "
                                  f"{node['exclusiveMinimum']}")
        elif kind == "string":
            if not isinstance(value, str):
                errors.append(f"{path}: expected string")
            elif len(value) < node.get("minLength", 0):
                errors.append(f"{path}: shorter than minLength")
        elif kind == "boolean":
            if not isinstance(value, bool):
                errors.append(f"{path}: expected boolean")
        if "enum" in node and value not in node["enum"]:
            errors.append(f"{path}: {value!r} not in {node['enum']}")

    walk(payload, schema, where)
    return errors


def main() -> int:
    schema = TopologySpec.json_schema()
    failures = []

    # 1. schema <-> parser field drift
    rack_props = schema["properties"]["racks"]["items"]["properties"]
    link_props = schema["properties"]["links"]["items"]["properties"]
    for label, got, want in (
        ("top-level", set(schema["properties"]), TopologySpec._TOP_FIELDS),
        ("rack", set(rack_props), TopologySpec._RACK_FIELDS),
        ("link", set(link_props), TopologySpec._LINK_FIELDS),
    ):
        if got != set(want):
            failures.append(
                f"schema drift at {label}: schema={sorted(got)} "
                f"parser={sorted(want)}"
            )

    # 2. every preset validates and round-trips
    for name in available_topologies():
        spec = topology_for(name)
        payload = spec.as_dict()
        failures.extend(validate(payload, schema, f"preset {name!r}"))
        if TopologySpec.parse_json(spec.to_json()) != spec:
            failures.append(f"preset {name!r} does not round-trip")

    # 3. every committed example validates, parses, and builds
    documents = sorted(EXAMPLES.glob("*.json"))
    if not documents:
        failures.append(f"no example topologies under {EXAMPLES}/")
    for doc in documents:
        payload = json.loads(doc.read_text())
        errs = validate(payload, schema, str(doc))
        failures.extend(errs)
        if not errs:
            TopologySpec.parse_json(doc.read_text()).build()
            print(f"ok: {doc}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: schema in sync, {len(available_topologies())} presets "
          f"and {len(documents)} example document(s) validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
