#!/usr/bin/env python
"""End-to-end smoke test for the ``repro serve`` control-plane daemon.

Drives a real daemon subprocess over HTTP, SIGKILLs it mid-timeline,
restarts it on the same state directory, and asserts the crash-recovery
invariant: the recovered run's final report is byte-identical to an
uninterrupted run's. This is the process-level counterpart of
``tests/serve/test_crash_recovery.py`` (which crashes in-process) —
here the kill is a genuine ``SIGKILL`` against a separate interpreter.

Run from the repo root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import urllib.error
import urllib.request

SPEC = (
    "chain enterprise: ACL -> Encrypt -> IPv4Fwd\n"
    "chain residential: BPF -> NAT -> IPv4Fwd\n"
)

COMMANDS = [
    {"kind": "arrive", "chain": "dyn0",
     "spec": "chain dyn0: ACL -> IPv4Fwd",
     "t_min_mbps": 500.0, "t_max_mbps": 4000.0},
    {"kind": "scale", "chain": "enterprise", "t_min_mbps": 1500.0},
    {"kind": "inject_fault", "action": "degrade_link",
     "target": "server0", "severity": 0.4},
    {"kind": "depart", "chain": "dyn0"},
    {"kind": "inject_fault", "action": "restore_link",
     "target": "server0"},
]

KILL_AFTER = 3  # SIGKILL once this many commands are acknowledged


def start_daemon(state_dir: str, spec_path: str):
    """Spawn ``repro serve`` and return ``(process, base_url)``."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", spec_path,
         "--tmin", "1", "1", "--tmax", "20", "20",
         "--state-dir", state_dir,
         "--packets", "16", "--flows", "8", "--batch", "8",
         "--checkpoint-every", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    prefix = "repro-serve listening on "
    if not line.startswith(prefix):
        proc.kill()
        rest = proc.stdout.read()
        raise SystemExit(f"daemon never became ready: {line!r}\n{rest}")
    return proc, line[len(prefix):].strip()


def request(url: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def drive(proc, base, commands):
    outcomes = []
    for command in commands:
        code, body = request(base + "/v1/commands", command)
        if code != 200 or body["status"] != "applied":
            proc.kill()
            raise SystemExit(f"command not applied ({code}): {body}")
        outcomes.append(body)
        print(f"  s{body['seq']} {command['kind']} -> {body['status']}")
    return outcomes


def shutdown(proc, base):
    code, _ = request(base + "/v1/shutdown", {})
    assert code == 200, f"shutdown returned {code}"
    out, _ = proc.communicate(timeout=120)
    if proc.returncode != 0:
        raise SystemExit(
            f"daemon exited {proc.returncode}:\n{out}"
        )
    return out


def run_uninterrupted(root: str, spec_path: str) -> dict:
    print("== reference run (uninterrupted) ==")
    state = os.path.join(root, "reference")
    proc, base = start_daemon(state, spec_path)
    drive(proc, base, COMMANDS)
    _, report = request(base + "/v1/report")
    shutdown(proc, base)
    return report


def run_crashed(root: str, spec_path: str) -> dict:
    print(f"== crashed run (SIGKILL after {KILL_AFTER} commands) ==")
    state = os.path.join(root, "crashed")
    proc, base = start_daemon(state, spec_path)
    drive(proc, base, COMMANDS[:KILL_AFTER])
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=120)
    print(f"  killed (exit {proc.returncode})")

    print("== restart on the same state dir ==")
    proc, base = start_daemon(state, spec_path)
    code, health = request(base + "/v1/health")
    assert health["recovered"] is True, f"not recovered: {health}"
    print(f"  recovered at seq {health['seq']}")
    assert health["seq"] == KILL_AFTER, health
    drive(proc, base, COMMANDS[KILL_AFTER:])
    _, report = request(base + "/v1/report")
    shutdown(proc, base)
    return report


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as root:
        spec_path = os.path.join(root, "chains.lemur")
        with open(spec_path, "w") as fh:
            fh.write(SPEC)

        reference = run_uninterrupted(root, spec_path)
        recovered = run_crashed(root, spec_path)

        ref_doc = json.dumps(reference, sort_keys=True)
        got_doc = json.dumps(recovered, sort_keys=True)
        if ref_doc != got_doc:
            print("FAIL: recovered report diverges from reference")
            print(f"reference: {ref_doc}")
            print(f"recovered: {got_doc}")
            return 1
        print("OK: recovered report is byte-identical to the "
              "uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
