"""eBPF substrate tests: program model, verifier, NIC runtime (§A.3)."""

import pytest

from repro.ebpf.nic import SmartNICRuntime, XDPAction
from repro.ebpf.program import EBPFProgram, EBPFSection
from repro.ebpf.verifier import (
    MAX_INSTRUCTIONS,
    MAX_STACK_BYTES,
    VerifierReport,
    verify_program,
)
from repro.exceptions import DataplaneError, VerifierError
from repro.hw.smartnic import SmartNIC
from repro.net.packet import Packet
from repro.profiles.defaults import default_profiles


def program(instructions=100, stack=64, back_edges=False, calls=False):
    prog = EBPFProgram(name="test")
    prog.sections.append(EBPFSection("dispatcher", None, 50, 32))
    prog.sections.append(EBPFSection("nf_0", "FastEncrypt",
                                     instructions, stack))
    prog.has_back_edges = back_edges
    prog.has_calls = calls
    return prog


class TestProgramModel:
    def test_instruction_sum(self):
        prog = program(instructions=100)
        assert prog.instructions == 150

    def test_stack_is_dispatcher_plus_deepest(self):
        prog = program(stack=64)
        assert prog.stack_bytes == 32 + 64

    def test_empty_program(self):
        assert EBPFProgram(name="empty").stack_bytes == 0


class TestVerifier:
    def test_valid_program_passes(self):
        report = verify_program(program())
        assert report.ok

    def test_instruction_limit(self):
        with pytest.raises(VerifierError):
            verify_program(program(instructions=MAX_INSTRUCTIONS + 1))

    def test_stack_limit(self):
        with pytest.raises(VerifierError):
            verify_program(program(stack=MAX_STACK_BYTES))  # +dispatcher 32

    def test_back_edges_rejected(self):
        with pytest.raises(VerifierError):
            verify_program(program(back_edges=True))

    def test_calls_rejected(self):
        with pytest.raises(VerifierError):
            verify_program(program(calls=True))

    def test_non_strict_returns_violations(self):
        report = verify_program(program(back_edges=True, calls=True),
                                strict=False)
        assert not report.ok
        assert len(report.violations) == 2

    def test_boundary_exactly_at_limit_ok(self):
        prog = EBPFProgram(name="edge")
        prog.sections.append(
            EBPFSection("dispatcher", None, MAX_INSTRUCTIONS, 0)
        )
        assert verify_program(prog).ok


class TestNICRuntime:
    def _runtime(self):
        nic = SmartNIC(host_server="server0")
        runtime = SmartNICRuntime(nic, default_profiles())
        prog = program()
        prog.demux[(5, 250)] = (0, 5, 249, False)
        runtime.load(prog, [("FastEncrypt", {})])
        return runtime

    def test_processes_and_retags(self):
        runtime = self._runtime()
        pkt = Packet.build(payload=b"plaintext!")
        pkt.push_nsh(5, 250)
        action, out = runtime.process(pkt)
        assert action is XDPAction.TX
        assert out.nsh.spi == 5 and out.nsh.si == 249
        assert out.payload != b"plaintext!"  # ChaCha ran

    def test_unknown_spi_drops(self):
        runtime = self._runtime()
        pkt = Packet.build()
        pkt.push_nsh(9, 9)
        action, _ = runtime.process(pkt)
        assert action is XDPAction.DROP
        assert runtime.drops == 1

    def test_missing_nsh_drops(self):
        runtime = self._runtime()
        action, _ = runtime.process(Packet.build())
        assert action is XDPAction.DROP

    def test_load_verifies(self):
        nic = SmartNIC(host_server="server0")
        runtime = SmartNICRuntime(nic, default_profiles())
        with pytest.raises(VerifierError):
            runtime.load(program(back_edges=True), [("FastEncrypt", {})])

    def test_unloaded_runtime_rejects(self):
        nic = SmartNIC(host_server="server0")
        runtime = SmartNICRuntime(nic, default_profiles())
        with pytest.raises(DataplaneError):
            runtime.process(Packet.build())
