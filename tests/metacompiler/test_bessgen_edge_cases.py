"""BESS/eBPF codegen edge cases: shared prefixes, SmartNIC hops, multi-
server scripts, all-switch chains."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.exceptions import CompileError
from repro.hw.spec import topology_for
from repro.metacompiler.bessgen import generate_bess
from repro.metacompiler.compiler import MetaCompiler
from repro.metacompiler.nsh import assign_service_paths
from repro.metacompiler.routing import synthesize_routing
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def compiled(spec, profiles, topology=None, slos=None):
    topology = topology or topology_for("paper-testbed").build()
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(0.5), t_max=gbps(30))]
    )
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    return placement, meta.compile_placement(placement)


class TestSharedPrefixSubgroups:
    def test_shared_subgroup_gets_entry_per_path(self, profiles):
        """A server subgroup upstream of a branch is entered under every
        service path's SPI; its next_map must route each correctly."""
        placement, artifacts = compiled(
            "chain s: Encrypt -> BPF -> [Monitor, UrlFilter] -> IPv4Fwd",
            profiles,
        )
        script = artifacts.bess["server0"]
        encrypt_sg = next(
            sg for sg in script.subgroups
            if any(m.nf_class == "Encrypt" for m in sg.modules)
        )
        spis = {entry.spi for entry in encrypt_sg.entries}
        assert len(spis) == 2  # one per linearized path

    def test_next_hops_differ_per_path(self, profiles):
        placement, artifacts = compiled(
            "chain s: Encrypt -> BPF -> [Monitor, UrlFilter] -> IPv4Fwd",
            profiles,
        )
        script = artifacts.bess["server0"]
        encrypt_sg = next(
            sg for sg in script.subgroups
            if any(m.nf_class == "Encrypt" for m in sg.modules)
        )
        nexts = {(e.next_spi, e.next_si) for e in encrypt_sg.entries}
        assert len(nexts) == 2


class TestMultiServerScripts:
    def test_one_script_per_loaded_server(self, profiles):
        topology = topology_for("multi-server").build()
        spec = ("chain a: ACL -> Encrypt -> IPv4Fwd\n"
                "chain b: BPF -> Dedup -> IPv4Fwd")
        slos = [SLO(t_min=gbps(1), t_max=gbps(30)),
                SLO(t_min=gbps(0.3), t_max=gbps(30))]
        placement, artifacts = compiled(spec, profiles, topology, slos)
        assert set(artifacts.bess) == {"server0", "server1"}
        for server, script in artifacts.bess.items():
            for sg in script.subgroups:
                assert sg.entries, f"{server}: subgroup without routing"

    def test_all_switch_chain_no_bess_script(self, profiles):
        placement, artifacts = compiled(
            "chain a: ACL -> NAT -> IPv4Fwd", profiles,
        )
        assert artifacts.bess == {}
        assert not artifacts.routing.entries_for("server0")

    def test_routing_mismatch_detected(self, profiles):
        """generate_bess must fail loudly when routing entries are out of
        sync with the placement's subgroups."""
        topology = topology_for("paper-testbed").build()
        chains = chains_from_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(0.5), t_max=gbps(30))],
        )
        placement = heuristic_place(chains, topology, profiles)
        paths = assign_service_paths(placement.chains)
        plan = synthesize_routing(placement.chains, paths, "tofino0")
        plan.demux["server0"] = []  # sabotage
        with pytest.raises(CompileError):
            generate_bess("server0", placement.chains, plan)


class TestSmartNICChains:
    def test_server_and_nic_hops_coexist(self, profiles):
        topology = topology_for("paper-smartnic").build()
        placement, artifacts = compiled(
            "chain c: UrlFilter -> FastEncrypt -> IPv4Fwd", profiles,
            topology=topology,
            slos=[SLO(t_min=gbps(1), t_max=gbps(39))],
        )
        assert "server0" in artifacts.bess       # UrlFilter
        assert "agilio0" in artifacts.ebpf       # FastEncrypt
        program, _specs = artifacts.ebpf["agilio0"]
        # the NIC's demux routes to (at least) the FastEncrypt section
        assert program.demux

    def test_unsupported_nic_nf_rejected(self, profiles):
        """Demux entries pointing at NFs without eBPF code models fail
        compilation instead of silently passing."""
        from repro.core.placement import NodeAssignment, Placement
        from repro.core.rates import analyze_chain
        from repro.core.subgroups import form_subgroups
        from repro.hw.platform import Platform
        from repro.metacompiler.ebpfgen import generate_ebpf

        topology = topology_for("paper-smartnic").build()
        chain = chains_from_spec("chain c: Monitor -> IPv4Fwd")[0]
        assignment = {}
        for nid, node in chain.graph.nodes.items():
            if node.nf_class == "Monitor":
                assignment[nid] = NodeAssignment(Platform.SMARTNIC,
                                                 "agilio0")
            else:
                assignment[nid] = NodeAssignment(Platform.PISA, "tofino0")
        subgroups = form_subgroups(chain, assignment, profiles)
        cp = analyze_chain(chain, assignment, subgroups, topology, profiles)
        paths = assign_service_paths([cp])
        plan = synthesize_routing([cp], paths, "tofino0")
        with pytest.raises(CompileError):
            generate_ebpf("agilio0", [cp], plan)
