"""NSH assignment and routing synthesis tests (§4.1)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.core.placement import NodeAssignment
from repro.core.rates import analyze_chain
from repro.core.subgroups import form_subgroups
from repro.exceptions import CompileError
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.metacompiler.nsh import INITIAL_SI, assign_service_paths
from repro.metacompiler.routing import synthesize_routing
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def place(spec, profiles, slos=None):
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(0.5), t_max=gbps(50))]
    )
    placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
    assert placement.feasible
    return placement


class TestServicePaths:
    def test_spis_globally_unique(self, profiles):
        placement = place(
            "chain a: ACL -> Encrypt -> IPv4Fwd\n"
            "chain b: BPF -> NAT -> IPv4Fwd",
            profiles,
            slos=[SLO(t_min=gbps(0.5), t_max=gbps(50))] * 2,
        )
        paths = assign_service_paths(placement.chains)
        spis = [p.spi for p in paths]
        assert len(spis) == len(set(spis))

    def test_si_decrements_along_path(self, profiles):
        placement = place("chain a: ACL -> Encrypt -> IPv4Fwd", profiles)
        (path,) = assign_service_paths(placement.chains)
        sis = [path.si_of[nid] for nid in path.node_ids]
        assert sis == [INITIAL_SI, INITIAL_SI - 1, INITIAL_SI - 2]

    def test_branch_paths_share_prefix_si(self, profiles):
        placement = place(
            "chain a: BPF -> [Encrypt, Monitor] -> IPv4Fwd", profiles
        )
        paths = assign_service_paths(placement.chains)
        assert len(paths) == 2
        entry = paths[0].node_ids[0]
        assert paths[0].si_of[entry] == paths[1].si_of[entry]
        assert paths[0].spi != paths[1].spi

    def test_hops_alternate_devices(self, profiles):
        placement = place("chain a: ACL -> Encrypt -> IPv4Fwd", profiles)
        (path,) = assign_service_paths(placement.chains)
        devices = [hop.device for hop in path.hops]
        assert devices == ["tofino0", "server0", "tofino0"]

    def test_hop_splits_at_subgroup_boundary(self, profiles):
        """A path crossing a merge stays on the server but changes
        subgroup, so a new hop (new demux entry) must start."""
        chain = chains_from_spec(
            "chain m: Dedup -> [Encrypt, Monitor] -> UrlFilter"
        )[0]
        assignment = {
            nid: NodeAssignment(Platform.SERVER, "server0")
            for nid in chain.graph.nodes
        }
        topo = topology_for("paper-testbed").build()
        subgroups = form_subgroups(chain, assignment, profiles)
        cp = analyze_chain(chain, assignment, subgroups, topo, profiles)
        paths = assign_service_paths([cp])
        for path in paths:
            # Dedup | arm | UrlFilter = 3 hops despite one device
            assert len(path.hops) == 3


class TestRoutingPlan:
    def test_linear_chain_routing(self, profiles):
        placement = place("chain a: ACL -> Encrypt -> IPv4Fwd", profiles)
        paths = assign_service_paths(placement.chains)
        plan = synthesize_routing(placement.chains, paths, "tofino0")
        (path,) = paths
        # switch hop 1 -> server; server hop returns to switch hop 2;
        # final switch hop egresses
        entry = plan.steering[(path.spi, INITIAL_SI)]
        assert entry.next_device == "server0"
        server_entries = plan.entries_for("server0")
        assert len(server_entries) == 1
        assert server_entries[0].next_si == INITIAL_SI - 2
        final = plan.steering[(path.spi, INITIAL_SI - 2)]
        assert final.is_egress

    def test_chain_entries_cover_fractions(self, profiles):
        placement = place(
            "chain a: BPF -> [Encrypt, Monitor] -> IPv4Fwd", profiles
        )
        paths = assign_service_paths(placement.chains)
        plan = synthesize_routing(placement.chains, paths, "tofino0")
        entries = plan.chain_entries["a"]
        assert len(entries) == 2
        assert sum(frac for _s, _i, frac in entries) == pytest.approx(1.0)

    def test_demux_dedupe_for_shared_prefix(self, profiles):
        """Shared-prefix subgroups appear once per SPI, not per duplicate."""
        chain = chains_from_spec(
            "chain m: Encrypt -> BPF -> [Monitor, UrlFilter] -> IPv4Fwd"
        )[0]
        placement = heuristic_place(
            [chain.with_slo(SLO(t_min=100.0, t_max=gbps(50)))],
            topology_for("paper-testbed").build(), profiles,
        )
        paths = assign_service_paths(placement.chains)
        plan = synthesize_routing(placement.chains, paths, "tofino0")
        entries = plan.entries_for("server0")
        keys = [(e.spi, e.si) for e in entries]
        assert len(keys) == len(set(keys))

    def test_unknown_chain_rejected(self, profiles):
        placement = place("chain a: ACL -> Encrypt -> IPv4Fwd", profiles)
        paths = assign_service_paths(placement.chains)
        paths[0].chain_name = "ghost"
        with pytest.raises(CompileError):
            synthesize_routing(placement.chains, paths, "tofino0")
