"""Artifact export (write_to) and round-trip of on-disk NF sources."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.metacompiler.p4pre import parse_standalone_nf
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def artifacts_and_dir(tmp_path):
    profiles = default_profiles()
    topology = topology_for("paper-smartnic").build()
    chains = chains_from_spec(
        "chain a: ACL -> Encrypt -> IPv4Fwd\n"
        "chain b: BPF -> FastEncrypt -> IPv4Fwd",
        slos=[SLO(t_min=gbps(1), t_max=gbps(30)),
              SLO(t_min=gbps(1), t_max=gbps(30))],
    )
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    written = artifacts.write_to(tmp_path)
    return artifacts, tmp_path, written


class TestWriteTo:
    def test_expected_families_written(self, artifacts_and_dir):
        _artifacts, root, written = artifacts_and_dir
        assert "p4/unified.p4" in written
        assert "bess/server0.bess" in written
        assert "ebpf/agilio0.c" in written
        assert "routing/paths.txt" in written
        for rel in written:
            assert (root / rel).is_file()
            assert (root / rel).stat().st_size > 0

    def test_unified_program_matches_memory(self, artifacts_and_dir):
        artifacts, root, _written = artifacts_and_dir
        on_disk = (root / "p4/unified.p4").read_text()
        assert on_disk == artifacts.p4.program_text

    def test_nf_sources_reparse(self, artifacts_and_dir):
        """Every exported standalone NF source parses back through the
        extended-P4 pre-processor."""
        _artifacts, root, written = artifacts_and_dir
        nf_files = [rel for rel in written if rel.startswith("p4/nfs/")]
        assert nf_files
        for rel in nf_files:
            p4nf = parse_standalone_nf((root / rel).read_text())
            assert p4nf.dag.tables

    def test_routing_paths_cover_all_spis(self, artifacts_and_dir):
        artifacts, root, _written = artifacts_and_dir
        text = (root / "routing/paths.txt").read_text()
        for path in artifacts.service_paths:
            assert f"spi={path.spi} " in text

    def test_rewrite_is_idempotent(self, artifacts_and_dir, tmp_path):
        artifacts, root, written = artifacts_and_dir
        again = artifacts.write_to(root)
        assert sorted(again) == sorted(written)
