"""Code generation tests: P4, BESS, eBPF, OpenFlow backends + stats."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import topology_for
from repro.metacompiler.codestats import CodegenStats, count_lines
from repro.metacompiler.compiler import MetaCompiler
from repro.metacompiler.p4pre import parse_standalone_nf
from repro.metacompiler.p4gen import render_standalone_nf
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def compile_spec(spec, profiles, topology=None, slos=None):
    topology = topology or topology_for("paper-testbed").build()
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(0.5), t_max=gbps(50))]
    )
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    return placement, meta.compile_placement(placement)


class TestP4Gen:
    def test_program_has_all_sections(self, profiles):
        _p, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        text = artifacts.p4.program_text
        assert "header_type ethernet_t" in text
        assert "parser parse_ethernet" in text
        assert "table lemur_steering" in text
        assert "control ingress" in text
        assert "table_add lemur_steering" in text

    def test_stage_layout_in_control_block(self, profiles):
        _p, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        assert "// stage 1" in artifacts.p4.program_text

    def test_standalone_sources_emitted(self, profiles):
        _p, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        assert len(artifacts.p4.nf_sources) == 2  # ACL + IPv4Fwd
        for source in artifacts.p4.nf_sources.values():
            assert source.startswith("@nf ")

    def test_steering_vs_nf_line_split(self, profiles):
        _p, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        assert artifacts.p4.steering_lines > 0
        assert artifacts.p4.nf_lines > 0


class TestP4Preprocessor:
    def test_roundtrip_through_extended_syntax(self):
        from repro.p4c.nflib import make_p4_nf
        for nf_class in ("ACL", "NAT", "LB", "IPv4Fwd", "Tunnel", "BPF"):
            original = make_p4_nf(nf_class, f"{nf_class.lower()}0")
            text = render_standalone_nf(original)
            parsed = parse_standalone_nf(text)
            assert parsed.name == original.name
            assert {t.name for t in parsed.dag.tables} == \
                {t.name for t in original.dag.tables}
            assert parsed.dag.edges == original.dag.edges
            assert parsed.parse_tree.transitions == \
                original.parse_tree.transitions
            for t_orig in original.dag.tables:
                t_new = parsed.dag.table(t_orig.name)
                assert t_new.match_type == t_orig.match_type
                assert t_new.size == t_orig.size
                assert t_new.reads == t_orig.reads
                assert t_new.writes == t_orig.writes

    def test_missing_name_rejected(self):
        from repro.exceptions import P4CompileError
        with pytest.raises(P4CompileError):
            parse_standalone_nf("headers { ethernet }\n"
                                "table t { match_type: exact }\n"
                                "control { t }")

    def test_no_tables_rejected(self):
        from repro.exceptions import P4CompileError
        with pytest.raises(P4CompileError):
            parse_standalone_nf("@nf empty\nheaders { ethernet }")

    def test_bad_statement_rejected(self):
        from repro.exceptions import P4CompileError
        with pytest.raises(P4CompileError):
            parse_standalone_nf("@nf x\nwizardry { }")


class TestBessGen:
    def test_script_structure(self, profiles):
        _p, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        script = artifacts.bess["server0"]
        text = script.render()
        assert "PortInc" in text
        assert "NSHdecap" in text
        assert "SubgroupDemux" in text
        assert "demux.register(spi=" in text
        assert "bess.attach_task" in text

    def test_replicated_subgroup_instances(self, profiles):
        placement, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles,
            slos=[SLO(t_min=gbps(5), t_max=gbps(40))],
        )
        script = artifacts.bess["server0"]
        (sg,) = script.subgroups
        assert sg.instances >= 3  # 5 Gbps needs several Encrypt cores
        assert len(sg.cores) == sg.instances
        assert 0 not in sg.cores  # core 0 is the demux core

    def test_rate_limit_attached_for_bounded_tmax(self, profiles):
        _p, artifacts = compile_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles,
            slos=[SLO(t_min=gbps(1), t_max=gbps(10))],
        )
        (sg,) = artifacts.bess["server0"].subgroups
        assert sg.rate_limit_mbps == pytest.approx(gbps(10))


class TestEbpfGen:
    def test_smartnic_program_generated_and_verified(self, profiles):
        topology = topology_for("paper-smartnic").build()
        _p, artifacts = compile_spec(
            "chain a: BPF -> FastEncrypt -> IPv4Fwd", profiles,
            topology=topology,
        )
        assert "agilio0" in artifacts.ebpf
        program, nf_specs = artifacts.ebpf["agilio0"]
        assert program.instructions <= 4096
        assert not program.has_back_edges
        assert program.unrolled_loops > 0  # ChaCha rounds unrolled
        assert nf_specs[0][0] == "FastEncrypt"
        assert "XDP_DROP" in program.source


class TestOpenFlowGen:
    def test_rules_generated_for_of_topology(self, profiles):
        from repro.chain.vocabulary import default_vocabulary
        topology = topology_for("paper-openflow").build()
        # Detunnel (vlan table) precedes ACL in the fixed pipeline order
        chains = chains_from_spec(
            "chain a: Detunnel -> Encrypt -> ACL",
            slos=[SLO(t_min=100.0, t_max=gbps(9))],
        )
        placement = heuristic_place(chains, topology, profiles)
        assert placement.feasible, placement.infeasible_reason
        meta = MetaCompiler(topology=topology, profiles=profiles)
        artifacts = meta.compile_placement(placement)
        assert artifacts.openflow_rules
        assert "actions=" in artifacts.openflow_text


class TestCodegenStats:
    def test_count_lines_skips_comments(self):
        text = "# comment\n\ncode line\n// c comment\nanother\n"
        assert count_lines(text) == 2

    def test_auto_fraction(self):
        stats = CodegenStats(manual_nf_lines=100, auto_steering_lines=40,
                             auto_nf_glue_lines=10)
        assert stats.auto_lines == 50
        assert stats.auto_fraction == pytest.approx(50 / 150)
        assert stats.steering_fraction_of_auto == pytest.approx(0.8)

    def test_empty_stats(self):
        stats = CodegenStats()
        assert stats.auto_fraction == 0.0
        assert stats.steering_fraction_of_auto == 0.0

    def test_report_format(self):
        stats = CodegenStats(manual_nf_lines=10, auto_steering_lines=5)
        assert "auto-generated" in stats.report()

    def test_canonical_chains_stats_match_paper_shape(self, profiles):
        """§5.3: 'more than a third of the total code is auto-generated,
        with most of the auto-generated code providing packet steering'."""
        from repro.experiments.chains import chains_with_delta
        chains = chains_with_delta([1, 2, 3, 4], delta=0.5)
        topology = topology_for("paper-testbed").build()
        placement = heuristic_place(chains, topology, profiles)
        meta = MetaCompiler(topology=topology, profiles=profiles)
        artifacts = meta.compile_placement(placement)
        assert artifacts.stats.auto_fraction > 1 / 3
        assert artifacts.stats.steering_fraction_of_auto > 0.5


class TestMetaCompilerAPI:
    def test_compile_spec_front_door(self, profiles):
        meta = MetaCompiler(profiles=profiles)
        placement, artifacts = meta.compile_spec(
            "chain front: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(40))],
        )
        assert placement.feasible
        assert artifacts.p4 is not None
        assert artifacts.bess

    def test_infeasible_placement_rejected(self, profiles):
        from repro.exceptions import CompileError
        meta = MetaCompiler(profiles=profiles)
        with pytest.raises(CompileError):
            meta.compile_spec(
                "chain hog: Dedup -> Limiter -> IPv4Fwd",
                slos=[SLO(t_min=gbps(30))],
            )
