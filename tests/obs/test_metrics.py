"""Unit tests for the observability core (``repro.obs``)."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    NULL_TIMER,
    get_registry,
    render_json,
    render_text,
    scoped_registry,
    set_registry,
)
from repro.obs.metrics import SAMPLE_CAP


class TestCounter:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(4)
        assert registry.counter_value("events") == 5

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("lp.solves", objective="marginal").inc()
        registry.counter("lp.solves", objective="max_min").inc(2)
        assert registry.counter_value("lp.solves", objective="marginal") == 1
        assert registry.counter_value("lp.solves", objective="max_min") == 2

    def test_label_order_insensitive(self):
        registry = MetricsRegistry()
        a = registry.counter("drops", device="s0", reason="acl")
        b = registry.counter("drops", reason="acl", device="s0")
        assert a is b

    def test_counter_value_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never.touched") == 0
        assert list(registry.counters()) == []


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        h = registry.histogram("sizes")
        for value in [1.0, 2.0, 3.0, 4.0]:
            h.observe(value)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == 2.5

    def test_percentiles(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for value in range(101):
            h.observe(float(value))
        assert h.percentile(50) == 50.0
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_sample_cap_keeps_exact_aggregates(self):
        registry = MetricsRegistry()
        h = registry.histogram("big")
        for value in range(SAMPLE_CAP + 100):
            h.observe(float(value))
        assert h.count == SAMPLE_CAP + 100
        assert h.max == float(SAMPLE_CAP + 99)


class TestTimer:
    def test_observes_elapsed_seconds(self):
        registry = MetricsRegistry()
        with registry.timer("phase.seconds", stage="x") as t:
            sum(range(1000))
        h = registry.histogram("phase.seconds", stage="x")
        assert h.count == 1
        assert t.last_seconds >= 0
        assert h.total == pytest.approx(t.last_seconds)


class TestDisabledRegistry:
    def test_getters_return_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c") is NULL_COUNTER
        assert registry.histogram("h") is NULL_HISTOGRAM
        assert registry.timer("t") is NULL_TIMER

    def test_null_instruments_record_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(10)
        registry.histogram("h").observe(1.0)
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": []}


class TestRegistrySwapping:
    def test_set_registry_installs_fresh_default(self):
        previous = get_registry()
        try:
            fresh = set_registry()
            assert get_registry() is fresh
            assert fresh is not previous
        finally:
            set_registry(previous)

    def test_scoped_registry_restores(self):
        before = get_registry()
        with scoped_registry() as scoped:
            assert get_registry() is scoped
            scoped.counter("inside").inc()
        assert get_registry() is before
        assert before.counter_value("inside") == 0


class TestExport:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("rack.packets.injected", chain="a").inc(7)
        registry.histogram("rack.latency_us", chain="a").observe(11.5)
        return registry

    def test_render_json_round_trips(self):
        registry = self._populated()
        doc = json.loads(render_json(registry))
        [counter] = doc["counters"]
        assert counter["name"] == "rack.packets.injected"
        assert counter["labels"] == {"chain": "a"}
        assert counter["value"] == 7
        [hist] = doc["histograms"]
        assert hist["count"] == 1
        assert hist["mean"] == 11.5

    def test_render_text_lines(self):
        text = render_text(self._populated())
        assert "rack.packets.injected{chain=a}" in text
        assert "rack.latency_us{chain=a}" in text


class TestQuantile:
    """The module-level interpolating quantile (numpy-``linear`` method)."""

    def test_matches_numpy_on_seeded_data(self):
        import random

        import numpy as np

        from repro.obs import quantile

        rng = random.Random(7)
        samples = [rng.uniform(0.0, 500.0) for _ in range(257)]
        for q in (0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert quantile(samples, q) == pytest.approx(
                float(np.quantile(samples, q)), rel=1e-12)

    def test_interpolation_and_edges(self):
        from repro.obs import quantile

        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert quantile([5.0], 0.99) == 5.0
        assert quantile([3.0, 1.0, 2.0], 0.0) == 1.0
        assert quantile([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_order_invariant(self):
        from repro.obs import quantile

        a = [9.0, 2.0, 7.0, 4.0, 1.0]
        assert quantile(a, 0.5) == quantile(sorted(a), 0.5)
        assert quantile(a, 0.5) == quantile(list(reversed(a)), 0.5)

    def test_empty_returns_zero(self):
        from repro.obs import quantile

        assert quantile([], 0.99) == 0.0

    def test_out_of_range_raises(self):
        from repro.obs import quantile

        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        with pytest.raises(ValueError):
            quantile([1.0], -0.1)

    def test_histogram_quantile_and_p95_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rack.latency_us", chain="a")
        for value in (10.0, 20.0, 30.0, 40.0):
            hist.observe(value)
        # the interpolating quantile vs the nearest-rank percentile the
        # summary surface keeps for backwards compatibility
        assert hist.quantile(0.5) == pytest.approx(25.0)
        summary = hist.summary()
        assert summary["p95"] == 40.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
