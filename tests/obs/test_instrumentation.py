"""Placer and meta-compiler instrumentation lands in the registry."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.placer import Placer, PlacementRequest
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import scoped_registry
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def chains():
    return chains_from_spec(
        "chain a: ACL -> Encrypt -> IPv4Fwd",
        slos=[SLO(t_min=gbps(1), t_max=gbps(30))],
    )


class TestPlacerInstrumentation:
    def test_place_records_timings_and_counts(self, chains):
        with scoped_registry() as registry:
            placement = Placer().solve(
                PlacementRequest(chains=chains)
            ).placement
            assert placement.feasible
            wall = registry.histogram(
                "placer.place.seconds", strategy="lemur"
            )
            assert wall.count == 1
            assert wall.total > 0
            assert registry.counter_value(
                "placer.placements", strategy="lemur", feasible="true"
            ) == 1
            stages = {
                dict(h.labels).get("stage")
                for h in registry.histograms()
                if h.name == "placer.stage.seconds"
            }
            assert "stage_constraints" in stages
            assert "coalesce_aggressive" in stages
            assert registry.counter_value("lp.solves", objective="marginal") > 0

    def test_disabled_registry_records_nothing(self, chains):
        from repro.obs import MetricsRegistry

        with scoped_registry(MetricsRegistry(enabled=False)) as registry:
            placement = Placer().solve(
                PlacementRequest(chains=chains)
            ).placement
            assert placement.feasible
            assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}


class TestMetaCompilerInstrumentation:
    def test_codegen_timings_and_line_counts(self, chains):
        with scoped_registry() as registry:
            topology = topology_for("paper-testbed").build()
            profiles = default_profiles()
            placer = Placer(topology=topology, profiles=profiles)
            placement = placer.solve(
                PlacementRequest(chains=chains)
            ).placement
            meta = MetaCompiler(topology=topology, profiles=profiles)
            artifacts = meta.compile_placement(placement)
            platforms = {
                dict(h.labels).get("platform")
                for h in registry.histograms()
                if h.name == "metacompiler.codegen.seconds"
            }
            assert {"routing", "p4", "bess"} <= platforms
            assert registry.counter_value("metacompiler.service_paths") == len(
                artifacts.service_paths
            )
            p4_lines = registry.counter_value(
                "metacompiler.codegen.lines", platform="p4"
            )
            assert p4_lines == artifacts.stats.per_platform["p4"]
            stages = registry.histogram("metacompiler.p4.stages")
            assert stages.count == 1
            assert stages.max == artifacts.p4.compile_result.stage_count
