"""Declarative topology specs: validation, round-trip, presets, shims."""

import json

import pytest

from repro.exceptions import TopologyError
from repro.hw.multirack import MultiRackTopology
from repro.hw.spec import (
    InterRackLinkSpec,
    RackSpec,
    TopologySpec,
    available_topologies,
    topology_for,
)
from repro.hw.topology import Topology


class TestRackSpec:
    def test_default_builds_paper_rack(self):
        topo = RackSpec().build()
        assert isinstance(topo, Topology)
        assert topo.switch.name == "tofino0"
        assert [s.name for s in topo.servers] == ["server0"]
        assert not topo.smartnics

    def test_prefix_lands_on_every_device(self):
        topo = RackSpec(smartnic=True).build(prefix="r1.")
        assert topo.switch.name == "r1.tofino0"
        assert topo.servers[0].name == "r1.server0"
        assert topo.smartnics[0].name == "r1.agilio0"
        assert topo.smartnics[0].host_server == "r1.server0"

    @pytest.mark.parametrize("bad", [
        dict(name=""),
        dict(switch="juniper"),
        dict(server_model="mainframe"),
        dict(servers=0),
        dict(num_stages=0),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(TopologyError):
            RackSpec(**bad)


class TestLinkSpec:
    def test_name_is_endpoint_pair(self):
        assert InterRackLinkSpec(a="r0", b="r1").name == "r0~r1"

    @pytest.mark.parametrize("bad", [
        dict(a="r0", b="r0"),
        dict(a="r0", b="r1", capacity_mbps=0.0),
        dict(a="r0", b="r1", latency_us=-1.0),
    ])
    def test_invalid_links_rejected(self, bad):
        with pytest.raises(TopologyError):
            InterRackLinkSpec(**bad)


class TestTopologySpec:
    def test_single_rack_builds_plain_topology(self):
        built = TopologySpec.single().build()
        assert isinstance(built, Topology)
        assert not TopologySpec.single().is_multi_rack

    def test_star_shape(self):
        spec = TopologySpec.star(3, latency_us=25.0)
        assert spec.rack_names == ["r0", "r1", "r2"]
        assert [link.name for link in spec.links] == ["r0~r1", "r0~r2"]
        assert all(link.latency_us == 25.0 for link in spec.links)
        fabric = spec.build()
        assert isinstance(fabric, MultiRackTopology)
        assert fabric.ingress == "r0"
        # multi-rack devices carry the rack prefix
        assert fabric.rack("r1").switch.name == "r1.tofino0"

    def test_from_flags_bridges_legacy_vocabulary(self):
        assert TopologySpec.from_flags(with_smartnic=True).racks[0].smartnic
        assert TopologySpec.from_flags(
            with_openflow=True).racks[0].switch == "openflow"
        multi = TopologySpec.from_flags(servers=3)
        assert multi.racks[0].servers == 3
        assert multi.racks[0].server_model == "eight-core"
        star = TopologySpec.from_flags(racks=2)
        assert star.is_multi_rack and len(star.racks) == 2

    def test_duplicate_rack_names_rejected(self):
        with pytest.raises(TopologyError):
            TopologySpec(racks=(RackSpec(name="r0"), RackSpec(name="r0")))

    def test_link_to_unknown_rack_rejected(self):
        with pytest.raises(TopologyError):
            TopologySpec(
                racks=(RackSpec(name="r0"), RackSpec(name="r1")),
                links=(InterRackLinkSpec(a="r0", b="r9"),),
            )

    def test_single_rack_with_links_rejected(self):
        with pytest.raises(TopologyError):
            TopologySpec(
                racks=(RackSpec(name="r0"),),
                links=(InterRackLinkSpec(a="r0", b="r1"),),
            )

    def test_no_racks_rejected(self):
        with pytest.raises(TopologyError):
            TopologySpec(racks=())


class TestWireFormat:
    def test_json_round_trip(self):
        spec = TopologySpec.star(
            2, rack_template=RackSpec(smartnic=True), capacity_mbps=20000.0,
        )
        assert TopologySpec.parse_json(spec.to_json()) == spec
        assert TopologySpec.from_dict(spec.as_dict()) == spec

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(TopologyError, match="unknown fields"):
            TopologySpec.from_dict({"racks": [{"name": "r0"}], "zone": "eu"})

    def test_unknown_rack_field_rejected(self):
        with pytest.raises(TopologyError, match="unknown fields"):
            TopologySpec.from_dict({"racks": [{"name": "r0", "cpus": 64}]})

    def test_unknown_link_field_rejected(self):
        with pytest.raises(TopologyError, match="unknown fields"):
            TopologySpec.from_dict({
                "racks": [{"name": "r0"}, {"name": "r1"}],
                "links": [{"a": "r0", "b": "r1", "color": "red"}],
            })

    def test_malformed_json_rejected(self):
        with pytest.raises(TopologyError, match="not valid JSON"):
            TopologySpec.parse_json("{racks: oops")

    def test_missing_required_field_rejected(self):
        with pytest.raises(TopologyError, match="malformed"):
            TopologySpec.from_dict({"racks": [{"switch": "pisa"}]})

    def test_schema_mirrors_wire_fields(self):
        schema = TopologySpec.json_schema()
        rack_props = schema["properties"]["racks"]["items"]["properties"]
        link_props = schema["properties"]["links"]["items"]["properties"]
        assert set(rack_props) == set(TopologySpec._RACK_FIELDS)
        assert set(link_props) == set(TopologySpec._LINK_FIELDS)
        assert set(schema["properties"]) == set(TopologySpec._TOP_FIELDS)
        # every preset's wire form enumerates only schema'd fields
        for name in available_topologies():
            payload = topology_for(name).as_dict()
            json.dumps(payload)  # serializable
            assert set(payload) <= set(schema["properties"])


class TestPresets:
    def test_known_presets_registered(self):
        names = available_topologies()
        for expected in ("paper-testbed", "paper-smartnic", "paper-openflow",
                         "metron", "multi-server", "two-rack", "three-rack"):
            assert expected in names

    def test_unknown_preset_raises(self):
        with pytest.raises(TopologyError, match="unknown topology preset"):
            topology_for("moonbase")

    def test_single_rack_overrides(self):
        spec = topology_for("multi-server", servers=4)
        assert spec.racks[0].servers == 4

    def test_multi_rack_overrides_rejected(self):
        with pytest.raises(TopologyError, match="multi-rack"):
            topology_for("two-rack", servers=4)

    def test_paper_testbed_matches_legacy_device_names(self):
        topo = topology_for("paper-testbed").build()
        assert topo.switch.name == "tofino0"
        assert [s.name for s in topo.servers] == ["server0"]


class TestLegacyShims:
    def test_default_testbed_warns_once(self):
        from repro.hw import topology as legacy

        legacy._reset_topology_deprecations()
        with pytest.warns(DeprecationWarning, match="default_testbed"):
            shimmed = legacy.default_testbed()
        # second call is silent (warn-once)
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            legacy.default_testbed()
        # the shim delegates to the spec builder: identical shape
        fresh = topology_for("paper-testbed").build()
        assert shimmed.switch.name == fresh.switch.name
        assert [s.name for s in shimmed.servers] == \
            [s.name for s in fresh.servers]
        legacy._reset_topology_deprecations()

    def test_multi_server_testbed_warns_and_delegates(self):
        from repro.hw import topology as legacy

        legacy._reset_topology_deprecations()
        with pytest.warns(DeprecationWarning, match="multi_server_testbed"):
            shimmed = legacy.multi_server_testbed(3)
        fresh = topology_for("multi-server", servers=3).build()
        assert [s.name for s in shimmed.servers] == \
            [s.name for s in fresh.servers]
        legacy._reset_topology_deprecations()
