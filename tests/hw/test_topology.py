"""Hardware model and topology tests."""

import pytest

from repro.exceptions import TopologyError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.hw.pisa import PISASwitch, PISAStageResources
from repro.hw.platform import Platform
from repro.hw.server import CPUSocket, NIC, Server, eight_core_server, \
    paper_nf_server
from repro.hw.smartnic import SmartNIC
from repro.hw.topology import Topology, default_testbed, multi_server_testbed


class TestServer:
    def test_paper_server_shape(self):
        server = paper_nf_server()
        assert server.total_cores == 16
        assert server.allocatable_cores == 15  # demux core reserved
        assert server.freq_hz == pytest.approx(1.7e9)
        assert server.primary_nic().rate_mbps == pytest.approx(40_000)

    def test_eight_core_server(self):
        server = eight_core_server("s1")
        assert server.total_cores == 8
        assert server.allocatable_cores == 7

    def test_no_sockets_rejected(self):
        with pytest.raises(TopologyError):
            Server(name="bad", sockets=[], nics=[NIC()])

    def test_nic_socket_validated(self):
        with pytest.raises(TopologyError):
            Server(name="bad", sockets=[CPUSocket(0)],
                   nics=[NIC(socket=3)])

    def test_nic_by_name(self):
        server = paper_nf_server()
        assert server.nic_by_name("xl710").rate_mbps == pytest.approx(40_000)
        with pytest.raises(TopologyError):
            server.nic_by_name("nope")


class TestPISASwitch:
    def test_defaults_match_testbed(self):
        switch = PISASwitch()
        assert switch.num_stages == 12
        assert switch.num_ports == 32
        assert switch.port_rate_mbps == pytest.approx(100_000)

    def test_stage_resources_copy(self):
        res = PISAStageResources()
        clone = res.copy()
        clone.table_slots = 1
        assert res.table_slots == 8


class TestTopology:
    def test_default_testbed(self):
        topo = default_testbed()
        assert topo.switch.platform is Platform.PISA
        assert len(topo.servers) == 1
        assert len(topo.links) == 1
        assert topo.links[0].capacity_mbps == pytest.approx(40_000)

    def test_smartnic_testbed(self):
        topo = default_testbed(with_smartnic=True)
        assert len(topo.smartnics) == 1
        assert topo.smartnic("agilio0").host_server == "server0"

    def test_openflow_testbed(self):
        topo = default_testbed(with_openflow=True)
        assert isinstance(topo.switch, OpenFlowSwitchModel)

    def test_multi_server(self):
        topo = multi_server_testbed(2)
        assert len(topo.servers) == 2
        assert topo.total_server_cores() == 14

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            Topology(switch=PISASwitch(name="x"),
                     servers=[eight_core_server("x")])

    def test_orphan_smartnic_rejected(self):
        with pytest.raises(TopologyError):
            Topology(switch=PISASwitch(),
                     servers=[eight_core_server("s0")],
                     smartnics=[SmartNIC(host_server="ghost")])

    def test_device_lookup(self):
        topo = default_testbed(with_smartnic=True)
        assert topo.device("tofino0").platform is Platform.PISA
        assert topo.device("server0").platform is Platform.SERVER
        assert topo.device("agilio0").platform is Platform.SMARTNIC
        with pytest.raises(TopologyError):
            topo.device("ghost")

    def test_failure_marking(self):
        topo = default_testbed(with_smartnic=True)
        topo.mark_failed("agilio0")
        assert topo.devices_for(Platform.SMARTNIC) == []
        with pytest.raises(TopologyError):
            topo.mark_failed("ghost")

    def test_failed_server_excluded_from_cores(self):
        topo = multi_server_testbed(2)
        before = topo.total_server_cores()
        topo.mark_failed("server1")
        assert topo.total_server_cores() == before - 7


class TestOpenFlowModel:
    def test_fixed_order_check(self):
        switch = OpenFlowSwitchModel()
        assert switch.supports_order(["Tunnel", "ACL", "IPv4Fwd"])
        assert switch.supports_order(["ACL"])
        assert not switch.supports_order(["IPv4Fwd", "ACL"])
        assert not switch.supports_order(["Monitor", "ACL"])

    def test_unsupported_nf(self):
        switch = OpenFlowSwitchModel()
        assert not switch.supports_order(["Encrypt"])
        assert switch.table_for_nf("Encrypt") is None
