"""Pool-reuse equivalence: the persistent runtime must be invisible.

The satellite contract for the worker runtime: a sharded traffic replay
produces a byte-identical :class:`~repro.sim.traffic.TrafficReport`
whether it runs (a) serially, (b) on a throwaway per-run pool, or
(c) on the persistent pool reused across consecutive phases — and
(d) a redeploy (artifact fingerprint change) must invalidate or
delta-update the warm rack, never reuse it stale.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.runtime.pool import get_pool, shutdown_pool
from repro.sim.traffic import TrafficSpec, run_traffic

SPEC_A = "\n".join([
    "chain c1: ACL -> NAT",
    "chain c2: ACL -> Monitor",
    "chain c3: NAT -> IPv4Fwd",
    "chain c4: ACL -> IPv4Fwd",
])
SLOS_A = ((100.0, 200.0),) * 4

#: same chain names and count, different bodies — compiles to different
#: artifacts, so the bundle fingerprint changes.
SPEC_B = "\n".join([
    "chain c1: ACL -> Encrypt -> IPv4Fwd",
    "chain c2: NAT -> Monitor",
    "chain c3: BPF -> IPv4Fwd",
    "chain c4: NAT -> IPv4Fwd",
])
SLOS_B = ((100.0, 200.0),) * 4


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a lingering shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _replay(spec_text, slos, *, shards, pool, vectorized=True):
    registry = MetricsRegistry()
    report = run_traffic(
        TrafficSpec(
            spec_text=spec_text, slos=slos,
            packets_per_chain=192, flows_per_chain=16, batch_size=32,
            vectorized=vectorized, shards=shards, pool=pool,
        ),
        registry=registry,
    )
    return report.to_json(), registry


def _rack_builds(registry):
    return {
        c["labels"]["mode"]: c["value"]
        for c in registry.snapshot()["counters"]
        if c["name"] == "runtime.rack_builds"
    }


def test_serial_per_run_and_persistent_pools_agree():
    serial, _ = _replay(SPEC_A, SLOS_A, shards=1, pool="per-run")
    per_run, per_run_reg = _replay(SPEC_A, SLOS_A, shards=2, pool="per-run")
    persistent, keep_reg = _replay(SPEC_A, SLOS_A, shards=2, pool="keep")
    assert serial == per_run == persistent
    # the per-run pool never touches the warm-rack cache
    assert _rack_builds(per_run_reg) == {}
    # the persistent pool deployed at least one rack cold
    assert _rack_builds(keep_reg).get("cold", 0) >= 1


def test_persistent_pool_reused_across_three_phases():
    serial, _ = _replay(SPEC_A, SLOS_A, shards=1, pool="per-run")
    reports, warm_total = [], 0
    for _phase in range(3):
        report, registry = _replay(SPEC_A, SLOS_A, shards=2, pool="keep")
        reports.append(report)
        warm_total += _rack_builds(registry).get("warm", 0)
    assert all(report == serial for report in reports)
    # later phases must have found warm racks (same artifact fingerprint)
    assert warm_total >= 2


def test_scalar_path_agrees_too():
    serial, _ = _replay(SPEC_A, SLOS_A, shards=1, pool="per-run",
                        vectorized=False)
    persistent, _ = _replay(SPEC_A, SLOS_A, shards=2, pool="keep",
                            vectorized=False)
    assert serial == persistent


def test_redeploy_invalidates_warm_rack():
    # warm the pool's racks on spec A ...
    _replay(SPEC_A, SLOS_A, shards=2, pool="keep")
    # ... then replay spec B (different artifacts, same chain names):
    # the cached rack must be delta-redeployed, not reused stale
    pooled_b, registry_b = _replay(SPEC_B, SLOS_B, shards=2, pool="keep")
    serial_b, _ = _replay(SPEC_B, SLOS_B, shards=1, pool="per-run")
    assert pooled_b == serial_b
    builds = _rack_builds(registry_b)
    # every worker's cached A-rack had to be rebuilt or delta-updated;
    # warm hits may still appear when a later shard reuses a slot the
    # same replay already brought up to date (e.g. one worker, two
    # shards), but never before a delta/cold build on that worker.
    assert builds.get("delta", 0) + builds.get("cold", 0) >= 1
    # and switching back also refuses the stale rack
    pooled_a, registry_a = _replay(SPEC_A, SLOS_A, shards=2, pool="keep")
    serial_a, _ = _replay(SPEC_A, SLOS_A, shards=1, pool="per-run")
    assert pooled_a == serial_a
    builds_a = _rack_builds(registry_a)
    assert builds_a.get("delta", 0) + builds_a.get("cold", 0) >= 1


def test_killed_workers_recover():
    """Respawned workers (lost caches, cleared shipped-set) still produce
    identical reports — the payload simply ships again."""
    serial, _ = _replay(SPEC_A, SLOS_A, shards=1, pool="per-run")
    first, _ = _replay(SPEC_A, SLOS_A, shards=2, pool="keep")
    pool = get_pool()
    for proc in list(pool._procs):
        proc.terminate()
        proc.join(timeout=5.0)
    second, _ = _replay(SPEC_A, SLOS_A, shards=2, pool="keep")
    assert first == second == serial


def test_stale_artifact_retry_reships_payload():
    """When the parent wrongly believes a worker caches the bundle (e.g.
    a restart raced the bookkeeping), the worker's typed stale error must
    trigger a single payload re-ship, not a failed run."""
    import pickle

    from repro.runtime.rackcache import bundle_fingerprint
    from repro.sim.traffic import TrafficEngine

    serial, _ = _replay(SPEC_A, SLOS_A, shards=1, pool="per-run")
    registry = MetricsRegistry()
    engine = TrafficEngine.from_spec(
        TrafficSpec(
            spec_text=SPEC_A, slos=SLOS_A,
            packets_per_chain=192, flows_per_chain=16, batch_size=32,
            vectorized=True, shards=2, pool="keep",
        ),
        registry=registry,
    )
    rack = engine.rack
    payload = pickle.dumps((rack.topology, rack.artifacts, rack.profiles,
                            engine.placement))
    fingerprint = bundle_fingerprint(payload)
    pool = get_pool(2)
    for worker in range(pool.max_workers):
        pool.needs_payload(worker, fingerprint)  # lie: mark as shipped
    report = engine.run(packets_per_chain=192)
    assert report.to_json() == serial
