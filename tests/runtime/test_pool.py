"""Unit tests for the persistent worker pool and shm transport."""

import os
import pickle

import numpy as np
import pytest

from repro.exceptions import WorkerPoolError
from repro.obs import scoped_registry
from repro.runtime.pool import (
    PoolCall,
    WorkerPool,
    default_worker_count,
    get_pool,
    shutdown_pool,
)
from repro.runtime.rackcache import (
    ArtifactBundle,
    StaleArtifactsError,
    bundle_fingerprint,
    resolve_bundle,
)
from repro.runtime.shm import ShmArrays


# -- worker entry points (must be importable by name) ------------------------


def _square(x):
    return x * x


def _pid(_arg):
    return os.getpid()


def _boom(message):
    raise ValueError(message)


def _nested_pool(_arg):
    get_pool()


@pytest.fixture()
def pool():
    p = WorkerPool(max_workers=2)
    yield p
    p.shutdown()


def test_dispatch_restores_submission_order(pool):
    calls = [PoolCall(_square, n) for n in range(8)]
    assert pool.dispatch(calls) == [n * n for n in range(8)]


def test_single_call(pool):
    assert pool.call(_square, 7) == 49


def test_affinity_pins_to_one_worker(pool):
    pids = pool.dispatch(
        [PoolCall(_pid, None, affinity="session-a") for _ in range(6)]
    )
    assert len(set(pids)) == 1


def test_worker_error_raises_typed(pool):
    with pytest.raises(WorkerPoolError) as excinfo:
        pool.dispatch([PoolCall(_boom, "kaput")])
    assert excinfo.value.remote_type == "ValueError"
    assert "kaput" in str(excinfo.value)
    assert "ValueError" in excinfo.value.remote_trace


def test_return_exceptions_keeps_slots(pool):
    outcomes = pool.dispatch(
        [PoolCall(_square, 3), PoolCall(_boom, "x"), PoolCall(_square, 4)],
        return_exceptions=True,
    )
    assert outcomes[0] == 9
    assert isinstance(outcomes[1], WorkerPoolError)
    assert outcomes[2] == 16


def test_pool_survives_worker_errors(pool):
    with pytest.raises(WorkerPoolError):
        pool.dispatch([PoolCall(_boom, "first")])
    assert pool.dispatch([PoolCall(_square, 5)]) == [25]


def test_dead_worker_respawns(pool):
    pool.dispatch([PoolCall(_square, 1)])
    for proc in pool._procs:
        proc.terminate()
        proc.join(timeout=5.0)
    assert pool.dispatch([PoolCall(_square, 6)]) == [36]


def test_respawn_clears_shipped_payloads(pool):
    workers = pool.plan(1)
    assert pool.needs_payload(workers[0], "fp-1") is True
    assert pool.needs_payload(workers[0], "fp-1") is False
    pool._procs[workers[0]].terminate()
    pool._procs[workers[0]].join(timeout=5.0)
    pool.dispatch([PoolCall(_square, 2)])  # triggers respawn
    assert pool.needs_payload(workers[0], "fp-1") is True


def test_nested_pools_forbidden(pool):
    with pytest.raises(WorkerPoolError) as excinfo:
        pool.dispatch([PoolCall(_nested_pool, None)])
    assert excinfo.value.remote_type == "WorkerPoolError"


def test_shutdown_rejects_further_dispatch():
    p = WorkerPool(max_workers=1)
    p.shutdown()
    with pytest.raises(WorkerPoolError):
        p.dispatch([PoolCall(_square, 1)])


def test_default_worker_count_caps_at_cores():
    cores = os.cpu_count() or 1
    assert default_worker_count(None) == cores
    assert default_worker_count(10_000) == cores
    assert default_worker_count(1) == 1
    assert default_worker_count(0) == cores


def test_shared_pool_reused_and_shut_down():
    first = get_pool(1)
    assert get_pool() is first
    shutdown_pool()
    second = get_pool(1)
    assert second is not first
    shutdown_pool()


# -- artifact bundle protocol ------------------------------------------------


def test_bundle_roundtrip_and_stale_detection():
    payload = pickle.dumps(("topology", "artifacts", "profiles"))
    fingerprint = bundle_fingerprint(payload)
    resolved = resolve_bundle(ArtifactBundle(fingerprint, payload))
    assert resolved == ("topology", "artifacts", "profiles")
    # cached: payload no longer needed
    again = resolve_bundle(ArtifactBundle(fingerprint, None))
    assert again is resolved
    with pytest.raises(StaleArtifactsError):
        resolve_bundle(ArtifactBundle("never-shipped", None))


# -- shared-memory transport -------------------------------------------------


def test_shm_pack_attach_roundtrip():
    arrays = {
        "sig": np.arange(100, dtype=np.int64),
        "weights": np.linspace(0.0, 1.0, 7),
    }
    packed = ShmArrays.pack(arrays, min_bytes=0)
    try:
        views, handle = packed.attach()
        assert np.array_equal(views["sig"], arrays["sig"])
        assert np.array_equal(views["weights"], arrays["weights"])
        ShmArrays.detach(handle)
        owned = packed.arrays()
        assert np.array_equal(owned["sig"], arrays["sig"])
    finally:
        packed.release()


def test_shm_descriptor_pickles_without_owner():
    packed = ShmArrays.pack({"sig": np.arange(10, dtype=np.int64)},
                            min_bytes=0)
    try:
        clone = pickle.loads(pickle.dumps(packed))
        assert clone._owner is None
        assert clone.segment == packed.segment
        assert np.array_equal(clone.arrays()["sig"], np.arange(10))
    finally:
        packed.release()


def test_shm_bytes_gauge_balances():
    with scoped_registry() as registry:
        packed = ShmArrays.pack({"sig": np.arange(64, dtype=np.int64)},
                                min_bytes=0)
        gauges = {
            g["name"]: g["value"] for g in registry.snapshot()["gauges"]
        }
        if packed.segment is not None:  # shm available on this platform
            assert gauges["runtime.shm.bytes"] >= 64 * 8
        packed.release()
        gauges = {
            g["name"]: g["value"] for g in registry.snapshot()["gauges"]
        }
        assert gauges.get("runtime.shm.bytes", 0) == 0


def test_shm_inline_fallback(monkeypatch):
    monkeypatch.setattr("repro.runtime.shm._shm", None)
    packed = ShmArrays.pack({"sig": np.arange(32, dtype=np.int64)},
                            min_bytes=0)
    assert packed.segment is None
    assert packed.inline is not None
    views, handle = packed.attach()
    assert np.array_equal(views["sig"], np.arange(32))
    ShmArrays.detach(handle)
    packed.release()  # no-op without a live segment


def test_shm_small_payloads_ride_inline():
    """Below the size threshold a segment's syscall cost loses to a
    pickle, so small schedules stay in-band."""
    packed = ShmArrays.pack({"sig": np.arange(16, dtype=np.int64)})
    assert packed.segment is None
    assert np.array_equal(packed.arrays()["sig"], np.arange(16))
    from repro.runtime.shm import SHM_MIN_BYTES

    big = np.zeros(SHM_MIN_BYTES, dtype=np.uint8)
    packed_big = ShmArrays.pack({"cols": big})
    try:
        if packed_big.segment is not None:  # shm usable on this platform
            assert packed_big.inline is None
    finally:
        packed_big.release()
