"""Profile database, cost models, and profiler tests."""

import pytest

from repro.exceptions import ProfileError
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    NSH_ENCAP_DECAP_CYCLES,
    default_profiles,
)
from repro.profiles.models import LinearCostModel
from repro.profiles.profiler import Profiler


@pytest.fixture()
def db():
    return default_profiles()


class TestTable4Values:
    """The published Table 4 numbers are encoded verbatim."""

    @pytest.mark.parametrize("nf,worst_diff,worst_same", [
        ("Encrypt", 9123, 8777),
        ("Dedup", 33185, 30867),
        ("ACL", 4091, 4008),
        ("NAT", 507, 477),
    ])
    def test_worst_case_costs(self, db, nf, worst_diff, worst_same):
        profile = db.get(nf)
        assert profile.cycles == worst_diff
        assert profile.cycles_numa_same == worst_same
        assert profile.from_paper

    def test_numa_diff_is_worse(self, db):
        for name in ("Encrypt", "Dedup", "ACL", "NAT", "Limiter"):
            p = db.get(name)
            assert p.cycles >= (p.cycles_numa_same or 0)

    def test_overhead_constants(self):
        assert NSH_ENCAP_DECAP_CYCLES == 220
        assert DEMUX_LB_CYCLES == 180


class TestSizeModels:
    def test_acl_scales_with_rules(self, db):
        small = db.server_cycles("ACL", {"rules": 16})
        large = db.server_cycles("ACL", {"rules": 4096})
        reference = db.server_cycles("ACL", {"rules": 1024})
        assert small < reference < large
        assert reference == pytest.approx(4091, rel=0.02)

    def test_rules_list_uses_length(self, db):
        rules = [{"drop": False}] * 16
        assert db.server_cycles("ACL", {"rules": rules}) == pytest.approx(
            db.server_cycles("ACL", {"rules": 16})
        )

    def test_nat_nearly_flat(self, db):
        low = db.server_cycles("NAT", {"entries": 1000})
        high = db.server_cycles("NAT", {"entries": 48000})
        assert high / low < 1.3

    def test_linear_fit(self):
        model = LinearCostModel.fit([(10, 100.0), (20, 200.0)],
                                    reference_size=10)
        assert model.cycles(15) == pytest.approx(150.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ProfileError):
            LinearCostModel.fit([(10, 100.0)], reference_size=10)

    def test_negative_slope_clamped(self):
        model = LinearCostModel.fit([(10, 200.0), (20, 100.0)],
                                    reference_size=10)
        assert model.slope == 0.0
        assert model.cycles(1000) >= 100.0

    def test_negative_size_rejected(self):
        model = LinearCostModel.fit([(10, 100.0), (20, 200.0)], 10)
        with pytest.raises(ProfileError):
            model.cycles(-1)


class TestDatabase:
    def test_all_table3_nfs_profiled(self, db):
        from repro.chain.vocabulary import default_vocabulary
        for name in default_vocabulary().names():
            assert name in db

    def test_missing_profile_raises(self, db):
        with pytest.raises(ProfileError):
            db.get("Quantum")

    def test_error_injection(self, db):
        reduced = db.with_error(-0.05)
        assert reduced.server_cycles("Encrypt") == pytest.approx(
            0.95 * db.server_cycles("Encrypt")
        )

    def test_error_bounds(self, db):
        with pytest.raises(ProfileError):
            db.with_error(0.9)

    def test_uniform_ablation(self, db):
        flat = db.uniform(5000.0)
        assert flat.server_cycles("Encrypt") == flat.server_cycles("Tunnel")
        # NIC capability preserved structurally
        assert flat.nic_cycles("FastEncrypt") is not None
        assert flat.nic_cycles("Encrypt") is None

    def test_nic_cycles(self, db):
        assert db.nic_cycles("FastEncrypt") == pytest.approx(16000)
        assert db.nic_cycles("Dedup") is None


class TestProfiler:
    def test_model_stats_bounded(self):
        profiler = Profiler()
        stats = profiler.profile_model("Encrypt", runs=500)
        assert stats.min <= stats.mean <= stats.max
        # Table 4 narrative: worst case within 6.5% of mean
        assert stats.worst_case_over_mean < 0.065

    def test_numa_same_cheaper(self):
        profiler = Profiler()
        same = profiler.profile_model("Dedup", runs=300, numa_same=True)
        diff = profiler.profile_model("Dedup", runs=300, numa_same=False)
        assert same.mean < diff.mean

    def test_table4_has_eight_rows(self):
        rows = Profiler().table4(runs=50)
        assert len(rows) == 8
        assert {r.numa for r in rows} == {"same", "diff"}

    def test_measured_mode_matches_model(self):
        profiler = Profiler()
        measured = profiler.profile_measured("ACL", runs=10,
                                             packets_per_run=16,
                                             params={"rules": 1024})
        modeled = profiler.profile_model("ACL", runs=100,
                                         params={"rules": 1024})
        assert measured.mean == pytest.approx(modeled.mean, rel=0.1)

    def test_too_few_runs_rejected(self):
        with pytest.raises(ProfileError):
            Profiler().profile_model("ACL", runs=1)

    def test_determinism(self):
        a = Profiler(seed=3).profile_model("NAT", runs=100)
        b = Profiler(seed=3).profile_model("NAT", runs=100)
        assert (a.mean, a.min, a.max) == (b.mean, b.min, b.max)
