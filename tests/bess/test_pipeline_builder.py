"""Direct tests of the generated-IR → executable-pipeline builder."""

import pytest

from repro.bess.pipeline import build_bess_pipeline
from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.net.packet import Packet
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def built():
    profiles = default_profiles()
    topology = topology_for("paper-testbed").build()
    chains = chains_from_spec(
        "chain a: ACL -> Encrypt -> IPv4Fwd",
        slos=[SLO(t_min=gbps(5), t_max=gbps(30))],  # forces replication
    )
    placement = heuristic_place(chains, topology, profiles)
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    ir = artifacts.bess["server0"]
    pipeline, port_inc, port_out, scheduler = build_bess_pipeline(
        ir, profiles
    )
    return ir, pipeline, port_inc, port_out, scheduler, artifacts


class TestBuilder:
    def test_shared_modules_present(self, built):
        _ir, pipeline, *_rest = built
        for name in ("port_inc", "nsh_decap", "demux", "nsh_encap",
                     "port_out"):
            assert name in pipeline.modules

    def test_one_module_chain_per_instance(self, built):
        ir, pipeline, *_rest = built
        (sg,) = ir.subgroups
        for instance in range(sg.instances):
            for spec in sg.modules:
                assert f"{spec.module_name}_i{instance}" in pipeline.modules

    def test_scheduler_has_one_leaf_per_instance(self, built):
        ir, _p, _pi, _po, scheduler, _a = built
        (sg,) = ir.subgroups
        leaves = sum(
            len(core.root.children) for core in scheduler.cores.values()
        )
        assert leaves == sg.instances

    def test_correct_packet_flow(self, built):
        ir, pipeline, port_inc, port_out, _sched, artifacts = built
        (sg,) = ir.subgroups
        entry = sg.entries[0]
        pkt = Packet.build(dst_ip="10.0.0.1", payload=b"flow")
        pkt.push_nsh(entry.spi, entry.si)
        pipeline.push(pkt, entry=port_inc.name)
        (out,) = port_out.drain()
        assert out.nsh.spi == entry.next_spi
        assert out.nsh.si == entry.next_si
        assert out.payload != b"flow"  # Encrypt ran

    def test_unknown_spi_dropped_inside(self, built):
        _ir, pipeline, port_inc, port_out, *_ = built
        pkt = Packet.build()
        pkt.push_nsh(250, 9)  # registered nowhere
        pipeline.push(pkt, entry=port_inc.name)
        assert port_out.drain() == []

    def test_flow_affinity_across_instances(self, built):
        ir, pipeline, port_inc, port_out, *_ = built
        (sg,) = ir.subgroups
        assert sg.instances >= 2
        entry = sg.entries[0]
        seen_modules = set()
        for _ in range(3):
            pkt = Packet.build(src_ip="10.4.4.4", src_port=77,
                               payload=b"x")
            pkt.push_nsh(entry.spi, entry.si)
            pipeline.push(pkt, entry=port_inc.name)
            (out,) = port_out.drain()
            instance_modules = [
                name for name in out.metadata.processed_by if "_i" in name
            ]
            seen_modules.add(tuple(instance_modules))
        assert len(seen_modules) == 1
