"""Functional NF module tests: every Table 3 NF actually works."""

import pytest

from repro.bess.modules import MODULE_CLASSES, make_nf_module
from repro.exceptions import DataplaneError
from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.packet import Packet


def run(module, packet):
    outs = module.receive(packet)
    return outs[0][1] if outs else None


class TestACL:
    def test_permit_rule(self):
        acl = make_nf_module("ACL", {"rules": [
            {"dst_ip": "10.0.0.0/8", "drop": False},
        ], "default_drop": True})
        ok = run(acl, Packet.build(dst_ip="10.1.1.1"))
        blocked = run(acl, Packet.build(dst_ip="192.168.1.1"))
        assert ok is not None
        assert blocked is None

    def test_drop_rule_first_match_wins(self):
        acl = make_nf_module("ACL", {"rules": [
            {"src_ip": "172.16.0.0/12", "drop": True},
            {"src_ip": "172.16.0.0/12", "drop": False},
        ]})
        assert run(acl, Packet.build(src_ip="172.16.5.5")) is None

    def test_port_and_proto_match(self):
        acl = make_nf_module("ACL", {"rules": [
            {"dst_port": 22, "proto": PROTO_TCP, "drop": True},
        ]})
        assert run(acl, Packet.build(dst_port=22, proto=PROTO_TCP)) is None
        assert run(acl, Packet.build(dst_port=22, proto=PROTO_UDP)) is not None

    def test_default_permit(self):
        acl = make_nf_module("ACL", {"rules": []})
        assert run(acl, Packet.build()) is not None


class TestBPF:
    def test_traffic_class_assignment(self):
        bpf = make_nf_module("BPF", {"filters": [
            {"dst_port": 80},
            {"dst_port": 443},
        ]})
        p1 = run(bpf, Packet.build(dst_port=80))
        p2 = run(bpf, Packet.build(dst_port=443))
        p3 = run(bpf, Packet.build(dst_port=8080))
        assert p1.metadata.fields["traffic_class"] == 0
        assert p2.metadata.fields["traffic_class"] == 1
        assert p3.metadata.fields["traffic_class"] == -1

    def test_vlan_filter(self):
        bpf = make_nf_module("BPF", {"filters": [{"vlan_tag": 7}]})
        tagged = run(bpf, Packet.build(vlan=7))
        untagged = run(bpf, Packet.build())
        assert tagged.metadata.fields["traffic_class"] == 0
        assert untagged.metadata.fields["traffic_class"] == -1


class TestUrlFilter:
    def test_blocks_pattern(self):
        uf = make_nf_module("UrlFilter", {"patterns": ["evil.example"]})
        assert run(uf, Packet.build(payload=b"GET http://evil.example/")) \
            is None
        assert run(uf, Packet.build(payload=b"GET http://ok.example/")) \
            is not None
        assert uf.matches == 1


class TestCrypto:
    def test_encrypt_changes_payload(self):
        enc = make_nf_module("Encrypt")
        pkt = Packet.build(payload=b"secret data here")
        out = run(enc, pkt)
        assert out.payload != b"secret data here"

    def test_encrypt_decrypt_roundtrip(self):
        enc = make_nf_module("Encrypt")
        dec = make_nf_module("Decrypt")
        pkt = Packet.build(payload=b"round trip payload!")
        out = run(dec, run(enc, pkt))
        assert out.payload == b"round trip payload!"

    def test_fastencrypt_differs_from_encrypt(self):
        pkt1 = Packet.build(payload=b"same payload")
        pkt2 = Packet.build(payload=b"same payload")
        e1 = run(make_nf_module("Encrypt"), pkt1)
        e2 = run(make_nf_module("FastEncrypt"), pkt2)
        assert e1.payload != e2.payload  # different keys

    def test_length_preserved(self):
        pkt = Packet.build(payload=b"x" * 333)
        out = run(make_nf_module("Encrypt"), pkt)
        assert len(out.payload) == 333


class TestTunnel:
    def test_push_pop(self):
        tun = make_nf_module("Tunnel", {"vid": 42})
        detun = make_nf_module("Detunnel")
        pkt = Packet.build()
        tagged = run(tun, pkt)
        assert tagged.vlan.vid == 42
        untagged = run(detun, tagged)
        assert untagged.vlan is None


class TestIPv4Fwd:
    def test_lpm_longest_match(self):
        fwd = make_nf_module("IPv4Fwd", {"routes": [
            {"prefix": "10.0.0.0/8", "port": 1},
            {"prefix": "10.1.0.0/16", "port": 2},
        ]})
        broad = run(fwd, Packet.build(dst_ip="10.9.0.1"))
        narrow = run(fwd, Packet.build(dst_ip="10.1.0.1"))
        assert broad.metadata.egress_port == 1
        assert narrow.metadata.egress_port == 2

    def test_no_route_drops(self):
        fwd = make_nf_module("IPv4Fwd", {"routes": [
            {"prefix": "10.0.0.0/8", "port": 1},
        ]})
        assert run(fwd, Packet.build(dst_ip="192.168.1.1")) is None

    def test_mac_rewrite(self):
        fwd = make_nf_module("IPv4Fwd", {"routes": [
            {"prefix": "0.0.0.0/0", "port": 1,
             "dst_mac": "02:11:22:33:44:55"},
        ]})
        out = run(fwd, Packet.build())
        assert out.eth.dst == "02:11:22:33:44:55"


class TestNAT:
    def test_source_rewrite_stable_per_flow(self):
        nat = make_nf_module("NAT", {"nat_ip": "198.51.100.1"})
        p1 = run(nat, Packet.build(src_ip="10.0.0.5", src_port=1000))
        p2 = run(nat, Packet.build(src_ip="10.0.0.5", src_port=1000))
        assert p1.ipv4.src == "198.51.100.1"
        assert p1.tcp is None  # default UDP
        assert p1.udp.src_port == p2.udp.src_port

    def test_different_flows_different_ports(self):
        nat = make_nf_module("NAT")
        p1 = run(nat, Packet.build(src_ip="10.0.0.5", src_port=1000))
        p2 = run(nat, Packet.build(src_ip="10.0.0.6", src_port=1000))
        assert p1.udp.src_port != p2.udp.src_port

    def test_reverse_lookup(self):
        nat = make_nf_module("NAT")
        out = run(nat, Packet.build(src_ip="10.0.0.9", src_port=777))
        original = nat.translate_back(out.udp.src_port)
        assert original == ("10.0.0.9", 777, PROTO_UDP)

    def test_table_exhaustion_drops_new_flows(self):
        nat = make_nf_module("NAT", {"entries": 2})
        run(nat, Packet.build(src_ip="10.0.0.1", src_port=1))
        run(nat, Packet.build(src_ip="10.0.0.2", src_port=2))
        assert run(nat, Packet.build(src_ip="10.0.0.3", src_port=3)) is None
        # existing flow still translates
        assert run(nat, Packet.build(src_ip="10.0.0.1", src_port=1)) \
            is not None
        assert nat.active_entries == 2


class TestLB:
    def test_flow_sticks_to_backend(self):
        lb = make_nf_module("LB", {"backends": ["10.10.0.1", "10.10.0.2"]})
        p1 = run(lb, Packet.build(src_port=5))
        p2 = run(lb, Packet.build(src_port=5))
        assert p1.ipv4.dst == p2.ipv4.dst

    def test_flows_spread_across_backends(self):
        lb = make_nf_module("LB", {"backends": ["10.10.0.1", "10.10.0.2",
                                                "10.10.0.3"]})
        dests = {
            run(lb, Packet.build(src_port=p)).ipv4.dst
            for p in range(200, 240)
        }
        assert len(dests) >= 2

    def test_backend_count_param(self):
        lb = make_nf_module("LB", {"backends": 4})
        assert len(lb.backends) == 4

    def test_empty_backends_rejected(self):
        with pytest.raises(DataplaneError):
            make_nf_module("LB", {"backends": []})


class TestMonitor:
    def test_per_flow_counters(self):
        mon = make_nf_module("Monitor")
        for _ in range(3):
            run(mon, Packet.build(src_ip="10.0.0.1", src_port=1))
        run(mon, Packet.build(src_ip="10.0.0.2", src_port=2))
        assert len(mon.flows) == 2
        top = mon.top_flows(1)
        assert top[0][1].packets == 3


class TestLimiter:
    def test_enforces_rate(self):
        limiter = make_nf_module(
            "Limiter", {"rate_mbps": 8.0, "burst_bytes": 1500}
        )
        # 1500B packets at 8 Mbps: one packet per 1500us
        passed = 0
        for i in range(10):
            pkt = Packet.build(total_bytes=1500)
            pkt.metadata.timestamp_us = i * 100.0  # 10x too fast
            if run(limiter, pkt) is not None:
                passed += 1
        assert 1 <= passed < 10
        assert limiter.exceeded == 10 - passed

    def test_conforming_traffic_passes(self):
        limiter = make_nf_module(
            "Limiter", {"rate_mbps": 1000.0, "burst_bytes": 100000}
        )
        for i in range(10):
            pkt = Packet.build(total_bytes=100)
            pkt.metadata.timestamp_us = i * 1000.0
            assert run(limiter, pkt) is not None


class TestDedup:
    def test_redundancy_eliminated(self):
        dedup = make_nf_module("Dedup")
        chunk = bytes(range(64)) * 4  # 256B of repeated content
        p1 = run(dedup, Packet.build(payload=chunk))
        p2 = run(dedup, Packet.build(payload=chunk))
        assert len(p2.payload) < len(p1.payload)
        assert dedup.hits > 0
        assert dedup.compression_ratio < 1.0

    def test_unique_content_not_compressed(self):
        dedup = make_nf_module("Dedup")
        import os
        random_payload = bytes((i * 37 + 11) % 256 for i in range(256))
        out = run(dedup, Packet.build(payload=random_payload))
        assert len(out.payload) == 256

    def test_short_payload_untouched(self):
        dedup = make_nf_module("Dedup")
        out = run(dedup, Packet.build(payload=b"short"))
        assert out.payload == b"short"


class TestRegistry:
    def test_all_server_nfs_have_modules(self):
        from repro.chain.vocabulary import default_vocabulary
        from repro.hw.platform import Platform
        vocab = default_vocabulary()
        for name in vocab.names():
            if vocab.lookup(name).available_on(Platform.SERVER):
                assert name in MODULE_CLASSES

    def test_unknown_nf_rejected(self):
        with pytest.raises(DataplaneError):
            make_nf_module("Quantum")
