"""NSH shared modules and scheduler tree tests (§A.1)."""

import pytest

from repro.bess.nsh_modules import (
    NSHDecap,
    NSHEncap,
    PortInc,
    PortOut,
    SIUpdate,
    SubgroupDemux,
)
from repro.bess.scheduler import (
    LeafTask,
    RateLimitNode,
    RoundRobinNode,
    SchedulerTree,
)
from repro.exceptions import DataplaneError
from repro.net.packet import Packet


class TestNSHModules:
    def test_decap_records_metadata(self):
        pkt = Packet.build()
        pkt.push_nsh(9, 250)
        decap = NSHDecap("d")
        (gate, out), = decap.receive(pkt)
        assert out.nsh is None
        assert out.metadata.spi == 9
        assert out.metadata.si == 250

    def test_encap_uses_metadata(self):
        pkt = Packet.build()
        pkt.metadata.spi, pkt.metadata.si = 3, 100
        encap = NSHEncap("e")
        (gate, out), = encap.receive(pkt)
        assert out.nsh.spi == 3 and out.nsh.si == 100

    def test_encap_fixed_params(self):
        encap = NSHEncap("e", params={"spi": 7, "si": 77})
        (gate, out), = encap.receive(Packet.build())
        assert out.nsh.spi == 7

    def test_encap_without_values_raises(self):
        with pytest.raises(DataplaneError):
            NSHEncap("e").receive(Packet.build())

    def test_portout_collects(self):
        out = PortOut("po")
        out.receive(Packet.build())
        out.receive(Packet.build())
        drained = out.drain()
        assert len(drained) == 2
        assert out.drain() == []


class TestSubgroupDemux:
    def _tagged(self, spi, si):
        pkt = Packet.build()
        pkt.metadata.spi, pkt.metadata.si = spi, si
        return pkt

    def test_routes_by_spi_si(self):
        demux = SubgroupDemux("d")
        (g1,) = demux.register(1, 255)
        (g2,) = demux.register(2, 255)
        (gate, _), = demux.receive(self._tagged(2, 255))
        assert gate == g2

    def test_unknown_route_drops(self):
        demux = SubgroupDemux("d")
        demux.register(1, 255)
        assert demux.receive(self._tagged(9, 9)) == []

    def test_replicated_subgroup_flow_affinity(self):
        demux = SubgroupDemux("d")
        gates = demux.register(1, 255, instances=4)
        assert len(gates) == 4
        pkt_a1 = Packet.build(src_port=100)
        pkt_a2 = Packet.build(src_port=100)
        for p in (pkt_a1, pkt_a2):
            p.metadata.spi, p.metadata.si = 1, 255
        (gate1, _), = demux.receive(pkt_a1)
        (gate2, _), = demux.receive(pkt_a2)
        assert gate1 == gate2  # same flow, same instance

    def test_replication_costs_lb_cycles(self):
        from repro.profiles.defaults import DEMUX_LB_CYCLES
        demux = SubgroupDemux("d")
        demux.register(1, 255, instances=2)
        pkt = self._tagged(1, 255)
        demux.receive(pkt)
        assert pkt.metadata.cycles_consumed >= DEMUX_LB_CYCLES

    def test_duplicate_registration_rejected(self):
        demux = SubgroupDemux("d")
        demux.register(1, 255)
        with pytest.raises(DataplaneError):
            demux.register(1, 255)


class TestSIUpdate:
    def test_next_map(self):
        update = SIUpdate("u", params={"next_map": {(1, 255): (1, 200)}})
        pkt = Packet.build()
        pkt.metadata.spi, pkt.metadata.si = 1, 255
        update.receive(pkt)
        assert (pkt.metadata.spi, pkt.metadata.si) == (1, 200)

    def test_next_map_miss_drops(self):
        update = SIUpdate("u", params={"next_map": {}})
        pkt = Packet.build()
        pkt.metadata.spi, pkt.metadata.si = 1, 255
        assert update.receive(pkt) == []

    def test_default_decrement(self):
        update = SIUpdate("u")
        pkt = Packet.build()
        pkt.metadata.spi, pkt.metadata.si = 1, 10
        update.receive(pkt)
        assert pkt.metadata.si == 9


class TestScheduler:
    def _task(self, name, cycles):
        state = {"left": 5}

        def work():
            if state["left"] <= 0:
                return 0
            state["left"] -= 1
            return cycles

        return LeafTask(name=name, work_fn=work)

    def test_round_robin_rotates(self):
        root = RoundRobinNode("root")
        t1, t2 = self._task("t1", 10), self._task("t2", 10)
        root.add(t1)
        root.add(t2)
        picked = [root.next_task().name for _ in range(4)]
        assert picked == ["t1", "t2", "t1", "t2"]

    def test_core_quantum_budget(self):
        tree = SchedulerTree()
        tree.assign(0, self._task("t", 100))
        core = tree.core(0)
        spent = core.run_quantum(max_cycles=250)
        assert spent == 300  # 3 runs pushed it past the budget

    def test_rate_limit_blocks_when_empty(self):
        limiter = RateLimitNode("rl", rate_mbps=100.0, burst_bits=100.0)
        limiter.add(self._task("t", 10))
        assert limiter.consume(100.0)  # drain the bucket
        assert limiter.next_task() is None
        limiter.advance(dt_us=1000.0)  # refill
        assert limiter.next_task() is not None

    def test_rate_limit_consume(self):
        limiter = RateLimitNode("rl", rate_mbps=100.0, burst_bits=1000.0)
        assert limiter.consume(800)
        assert not limiter.consume(800)

    def test_bad_rate_rejected(self):
        with pytest.raises(DataplaneError):
            RateLimitNode("rl", rate_mbps=0)

    def test_utilization(self):
        tree = SchedulerTree(freq_hz=1e9)
        tree.assign(0, self._task("t", 1000))
        tree.core(0).run_quantum(max_cycles=10_000)
        util = tree.utilization(duration_s=1e-5)
        assert 0 < util[0] <= 1.0
