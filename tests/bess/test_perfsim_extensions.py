"""Opt-in performance-model refinements: cache contention (ResQ, §5.2)
and egress-aware traffic fractions (data-dependent NFs, §5.2)."""

import pytest

from repro.bess.perfsim import ServerPerfModel, SubgroupLoad
from repro.chain.graph import chains_from_spec
from repro.hw.server import paper_nf_server
from repro.profiles.defaults import default_profiles


def load(sg_id="sg", cores=1):
    return SubgroupLoad(sg_id=sg_id, chain_name="c", cores=cores,
                        nf_costs=[("Encrypt", None, 1.0)])


class TestCacheContention:
    def test_default_off(self):
        base = ServerPerfModel(paper_nf_server(), default_profiles(), seed=3)
        knob = ServerPerfModel(paper_nf_server(), default_profiles(), seed=3,
                               cache_contention=0.0)
        loads = [load("a"), load("b"), load("c")]
        base.assign_sockets(loads)
        knob.assign_sockets(loads)
        assert base.subgroup_capacity_mbps(load("x")) == pytest.approx(
            knob.subgroup_capacity_mbps(load("x"))
        )

    def test_contention_lowers_capacity(self):
        quiet = ServerPerfModel(paper_nf_server(), default_profiles(),
                                seed=3)
        noisy = ServerPerfModel(paper_nf_server(), default_profiles(),
                                seed=3, cache_contention=0.03)
        loads_q = [load("a"), load("b"), load("c"), load("d")]
        loads_n = [load("a"), load("b"), load("c"), load("d")]
        quiet.assign_sockets(loads_q)
        noisy.assign_sockets(loads_n)
        q = sum(quiet.subgroup_capacity_mbps(l) for l in loads_q)
        n = sum(noisy.subgroup_capacity_mbps(l) for l in loads_n)
        assert n < q

    def test_resq_bound(self):
        """With short queues (the paper's regime), interference stays
        within a few percent — ResQ's 3% bound."""
        quiet = ServerPerfModel(paper_nf_server(), default_profiles(),
                                seed=3)
        noisy = ServerPerfModel(paper_nf_server(), default_profiles(),
                                seed=3, cache_contention=0.01)
        loads_q = [load("a"), load("b"), load("c")]
        loads_n = [load("a"), load("b"), load("c")]
        quiet.assign_sockets(loads_q)
        noisy.assign_sockets(loads_n)
        q = sum(quiet.subgroup_capacity_mbps(l) for l in loads_q)
        n = sum(noisy.subgroup_capacity_mbps(l) for l in loads_n)
        assert (q - n) / q < 0.03

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            ServerPerfModel(paper_nf_server(), default_profiles(),
                            cache_contention=0.9)


class TestEgressAwareFractions:
    def test_default_matches_paper_behavior(self):
        chain = chains_from_spec(
            "chain c: Dedup(egress_ratio=0.6) -> Monitor -> IPv4Fwd"
        )[0]
        fractions = chain.graph.node_fractions()
        assert all(f == pytest.approx(1.0) for f in fractions.values())

    def test_egress_ratio_attenuates_downstream(self):
        chain = chains_from_spec(
            "chain c: Dedup(egress_ratio=0.6) -> Monitor -> IPv4Fwd"
        )[0]
        fractions = chain.graph.node_fractions(egress_aware=True)
        order = chain.graph.topological_order()
        assert fractions[order[0]] == pytest.approx(1.0)   # Dedup input
        assert fractions[order[1]] == pytest.approx(0.6)   # after Dedup
        assert fractions[order[2]] == pytest.approx(0.6)

    def test_vocabulary_default_ratio_is_one(self):
        chain = chains_from_spec("chain c: Dedup -> Monitor")[0]
        fractions = chain.graph.node_fractions(egress_aware=True)
        assert all(f == pytest.approx(1.0) for f in fractions.values())

    def test_compound_attenuation(self):
        chain = chains_from_spec(
            "chain c: Dedup(egress_ratio=0.5) -> "
            "Dedup(egress_ratio=0.5) -> Monitor"
        )[0]
        fractions = chain.graph.node_fractions(egress_aware=True)
        (exit_node,) = chain.graph.exit_nodes()
        assert fractions[exit_node] == pytest.approx(0.25)

    def test_branches_combine_with_ratio(self):
        chain = chains_from_spec(
            "chain c: Dedup(egress_ratio=0.5) -> [Monitor, Encrypt]"
            " -> UrlFilter"
        )[0]
        fractions = chain.graph.node_fractions(egress_aware=True)
        (exit_node,) = chain.graph.exit_nodes()
        assert fractions[exit_node] == pytest.approx(0.5)
