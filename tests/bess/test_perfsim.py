"""Performance-model tests: socket assignment, sampled capacity, NIC
water-filling."""

import random

import pytest

from repro.bess.perfsim import ServerPerfModel, SubgroupLoad, waterfill_nic
from repro.hw.server import paper_nf_server
from repro.profiles.defaults import default_profiles


@pytest.fixture()
def model():
    return ServerPerfModel(paper_nf_server(), default_profiles(), seed=1)


def load(cores=1, nf="Encrypt", fraction=1.0, sg_id="sg"):
    return SubgroupLoad(sg_id=sg_id, chain_name="c", cores=cores,
                        nf_costs=[(nf, None, fraction)])


class TestSocketAssignment:
    def test_small_loads_land_on_nic_socket(self, model):
        loads = [load(cores=2, sg_id="a"), load(cores=2, sg_id="b")]
        model.assign_sockets(loads)
        assert all(l.numa_same for l in loads)

    def test_overflow_spills_cross_socket(self, model):
        # NIC socket has 7 free cores (8 minus demux)
        loads = [load(cores=6, sg_id="a"), load(cores=6, sg_id="b")]
        model.assign_sockets(loads)
        assert sorted(l.numa_same for l in loads) == [False, True]

    def test_split_load_is_cross_numa(self, model):
        loads = [load(cores=15, sg_id="big")]
        model.assign_sockets(loads)
        assert not loads[0].numa_same


class TestSampledCapacity:
    def test_capacity_within_profile_band(self, model):
        profiles = default_profiles()
        l = load(cores=1)
        worst = profiles.server_cycles("Encrypt") + 220
        best_mean = worst / 1.05
        for _ in range(20):
            cap = model.subgroup_capacity_mbps(l)
            upper = 1.7e9 / (best_mean * 0.9) * 12000 / 1e6
            lower = 1.7e9 / (worst + 1) * 12000 / 1e6
            assert lower <= cap <= upper

    def test_numa_same_faster_on_average(self):
        profiles = default_profiles()
        model = ServerPerfModel(paper_nf_server(), profiles, seed=2)
        same = load(cores=1)
        same.numa_same = True
        diff = load(cores=1)
        diff.numa_same = False
        same_caps = [model.subgroup_capacity_mbps(same) for _ in range(50)]
        diff_caps = [model.subgroup_capacity_mbps(diff) for _ in range(50)]
        assert sum(same_caps) / 50 > sum(diff_caps) / 50

    def test_cores_scale_capacity(self, model):
        one = model.subgroup_capacity_mbps(load(cores=1))
        four = model.subgroup_capacity_mbps(load(cores=4))
        assert 3.0 < four / one < 4.2


class TestWaterfill:
    def test_no_users_untouched(self):
        demands = {"a": 100.0, "b": 50.0}
        out = waterfill_nic(demands, {"a": 0.0, "b": 0.0}, 10.0)
        assert out == demands

    def test_fair_split_when_saturated(self):
        out = waterfill_nic({"a": 100.0, "b": 100.0},
                            {"a": 1.0, "b": 1.0}, 40.0)
        assert out["a"] == pytest.approx(20.0)
        assert out["b"] == pytest.approx(20.0)

    def test_small_demand_satisfied_first(self):
        out = waterfill_nic({"a": 5.0, "b": 100.0},
                            {"a": 1.0, "b": 1.0}, 40.0)
        assert out["a"] == pytest.approx(5.0)
        assert out["b"] == pytest.approx(35.0)

    def test_visit_weight_charges_more(self):
        out = waterfill_nic({"a": 100.0, "b": 100.0},
                            {"a": 2.0, "b": 1.0}, 60.0)
        # total consumption = 2*ra + rb <= 60
        assert 2 * out["a"] + out["b"] <= 60.0 + 1e-9

    def test_under_capacity_unchanged(self):
        out = waterfill_nic({"a": 10.0, "b": 10.0},
                            {"a": 1.0, "b": 1.0}, 100.0)
        assert out == {"a": 10.0, "b": 10.0}
