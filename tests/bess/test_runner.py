"""Time-stepped server execution tests: does the scheduled, executing
server agree with the analytic capacity model?"""

import pytest

from repro.bess.modules import make_nf_module
from repro.bess.runner import ServerRunner
from repro.exceptions import DataplaneError
from repro.profiles.defaults import default_profiles
from repro.units import mbps_to_pps

PROFILES = default_profiles()
FREQ = 1.7e9


def encrypt_head(instance):
    return make_nf_module("Encrypt", name=f"enc{instance}",
                          database=PROFILES, seed=instance)


def monitor_head(instance):
    return make_nf_module("Monitor", name=f"mon{instance}",
                          database=PROFILES, seed=instance)


def analytic_pps(nf_class):
    return FREQ / PROFILES.server_cycles(nf_class)


class TestThroughputAgreement:
    def test_underload_passes_everything(self):
        runner = ServerRunner(freq_hz=FREQ)
        runner.add_subgroup("enc", encrypt_head, cores=[1])
        capacity = analytic_pps("Encrypt")
        reports = runner.run({"enc": capacity * 0.5}, duration_us=20_000)
        report = reports["enc"]
        assert report.dropped == 0
        assert report.processed_pps == pytest.approx(capacity * 0.5,
                                                     rel=0.1)

    def test_overload_saturates_at_capacity(self):
        runner = ServerRunner(freq_hz=FREQ)
        runner.add_subgroup("enc", encrypt_head, cores=[1])
        capacity = analytic_pps("Encrypt")
        reports = runner.run({"enc": capacity * 3.0}, duration_us=20_000)
        report = reports["enc"]
        # executing throughput within ~12% of the analytic f/c model
        assert report.processed_pps == pytest.approx(capacity, rel=0.12)
        assert report.backlog + report.dropped > 0

    def test_replication_scales(self):
        one = ServerRunner(freq_hz=FREQ)
        one.add_subgroup("enc", encrypt_head, cores=[1])
        two = ServerRunner(freq_hz=FREQ)
        two.add_subgroup("enc", encrypt_head, cores=[1, 2])
        offered = analytic_pps("Encrypt") * 3.0
        r1 = one.run({"enc": offered}, duration_us=20_000)["enc"]
        r2 = two.run({"enc": offered}, duration_us=20_000)["enc"]
        assert r2.processed_pps == pytest.approx(2 * r1.processed_pps,
                                                 rel=0.15)


class TestScheduling:
    def test_round_robin_shares_one_core(self):
        """Two subgroups on the same core each get about half."""
        runner = ServerRunner(freq_hz=FREQ)
        runner.add_subgroup("a", encrypt_head, cores=[1])
        runner.add_subgroup("b", encrypt_head, cores=[1])
        offered = analytic_pps("Encrypt") * 2.0
        reports = runner.run({"a": offered, "b": offered},
                             duration_us=20_000)
        total = reports["a"].processed_pps + reports["b"].processed_pps
        assert total == pytest.approx(analytic_pps("Encrypt"), rel=0.15)
        assert reports["a"].processed_pps == pytest.approx(
            reports["b"].processed_pps, rel=0.2
        )

    def test_rate_limit_enforces_tmax(self):
        """The scheduler's token bucket caps a subgroup at t_max even
        when CPU is abundant (§4.2: 'We also use the scheduler to
        enforce t_max')."""
        runner = ServerRunner(freq_hz=FREQ)
        t_max_mbps = 500.0
        runner.add_subgroup("mon", monitor_head, cores=[1],
                            rate_limit_mbps=t_max_mbps)
        offered = mbps_to_pps(5_000.0)  # 10x the cap
        reports = runner.run({"mon": offered}, duration_us=50_000)
        report = reports["mon"]
        assert report.throughput_mbps <= t_max_mbps * 1.3
        assert report.throughput_mbps >= t_max_mbps * 0.5

    def test_unlimited_subgroup_unaffected_by_sibling_cap(self):
        runner = ServerRunner(freq_hz=FREQ)
        runner.add_subgroup("capped", monitor_head, cores=[1],
                            rate_limit_mbps=100.0)
        runner.add_subgroup("free", monitor_head, cores=[2])
        offered = mbps_to_pps(2_000.0)
        reports = runner.run({"capped": offered, "free": offered},
                             duration_us=20_000)
        assert reports["free"].throughput_mbps > \
            5 * reports["capped"].throughput_mbps


class TestValidation:
    def test_duplicate_subgroup_rejected(self):
        runner = ServerRunner()
        runner.add_subgroup("x", encrypt_head, cores=[1])
        with pytest.raises(DataplaneError):
            runner.add_subgroup("x", encrypt_head, cores=[2])

    def test_unknown_subgroup_in_offered(self):
        runner = ServerRunner()
        with pytest.raises(DataplaneError):
            runner.run({"ghost": 1000.0}, duration_us=1000)

    def test_bad_tick_rejected(self):
        with pytest.raises(DataplaneError):
            ServerRunner(tick_us=0)

    def test_dropping_module_counts(self):
        def dropper_head(instance):
            return make_nf_module(
                "ACL",
                {"rules": [], "default_drop": True},
                name=f"acl{instance}", database=PROFILES,
            )
        runner = ServerRunner(freq_hz=FREQ)
        runner.add_subgroup("acl", dropper_head, cores=[1])
        reports = runner.run({"acl": 10_000.0}, duration_us=10_000)
        assert reports["acl"].processed == 0
        assert reports["acl"].throughput_mbps == 0.0