"""Module/Pipeline framework tests."""

import pytest

from repro.bess.module import Module, Pipeline
from repro.exceptions import DataplaneError
from repro.net.packet import Packet
from repro.profiles.defaults import default_profiles


class Passthrough(Module):
    pass


class Dropper(Module):
    def process(self, packet):
        packet.metadata.drop_flag = True
        return []


class Splitter(Module):
    def process(self, packet):
        return [(0, packet), (1, packet.copy())]


class TestWiring:
    def test_connect_chains(self):
        a, b, c = Passthrough("a"), Passthrough("b"), Passthrough("c")
        a.connect(b).connect(c)
        assert a.downstream() is b
        assert b.downstream() is c

    def test_double_connect_rejected(self):
        a, b = Passthrough("a"), Passthrough("b")
        a.connect(b)
        with pytest.raises(DataplaneError):
            a.connect(b)

    def test_multiple_gates(self):
        s = Splitter("s")
        b, c = Passthrough("b"), Passthrough("c")
        s.connect(b, ogate=0)
        s.connect(c, ogate=1)
        assert s.downstream(0) is b
        assert s.downstream(1) is c


class TestPipeline:
    def test_push_to_exit(self):
        pipeline = Pipeline("p")
        a = pipeline.add(Passthrough("a"), entry=True)
        b = pipeline.add(Passthrough("b"))
        a.connect(b)
        exits = pipeline.push(Packet.build())
        assert len(exits) == 1
        assert exits[0][0] is b

    def test_drop_produces_no_exit(self):
        pipeline = Pipeline("p")
        a = pipeline.add(Passthrough("a"), entry=True)
        d = pipeline.add(Dropper("d"))
        a.connect(d)
        assert pipeline.push(Packet.build()) == []
        assert d.dropped_packets == 1

    def test_fanout(self):
        pipeline = Pipeline("p")
        s = pipeline.add(Splitter("s"), entry=True)
        pipeline.add(Passthrough("b"))
        pipeline.add(Passthrough("c"))
        s.connect(pipeline.module("b"), ogate=0)
        s.connect(pipeline.module("c"), ogate=1)
        exits = pipeline.push(Packet.build())
        assert len(exits) == 2

    def test_duplicate_module_rejected(self):
        pipeline = Pipeline("p")
        pipeline.add(Passthrough("a"))
        with pytest.raises(DataplaneError):
            pipeline.add(Passthrough("a"))

    def test_unknown_entry(self):
        pipeline = Pipeline("p")
        pipeline.add(Passthrough("a"), entry=True)
        with pytest.raises(DataplaneError):
            pipeline.push(Packet.build(), entry="nope")

    def test_ambiguous_entry(self):
        pipeline = Pipeline("p")
        pipeline.add(Passthrough("a"), entry=True)
        pipeline.add(Passthrough("b"), entry=True)
        with pytest.raises(DataplaneError):
            pipeline.push(Packet.build())

    def test_stats(self):
        pipeline = Pipeline("p")
        a = pipeline.add(Passthrough("a"), entry=True)
        pipeline.push(Packet.build())
        stats = pipeline.stats()
        assert stats["a"]["rx"] == 1
        assert stats["a"]["tx"] == 1


class TestCycleAccounting:
    def test_nf_module_charges_cycles(self):
        from repro.bess.modules import make_nf_module
        module = make_nf_module("ACL", {"rules": []},
                                database=default_profiles())
        pkt = Packet.build()
        module.receive(pkt)
        profile = default_profiles().get("ACL")
        assert pkt.metadata.cycles_consumed > 0
        assert pkt.metadata.cycles_consumed <= profile.cycles

    def test_plain_module_charges_nothing(self):
        pkt = Packet.build()
        Passthrough("a").receive(pkt)
        assert pkt.metadata.cycles_consumed == 0
