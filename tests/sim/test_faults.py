"""Fault timeline, rack fault hooks, and the SLO-guard chaos engine."""

import json

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.cache import PlacementCache
from repro.core.heuristic import heuristic_place
from repro.exceptions import DataplaneError, FaultInjectionError
from repro.hw.spec import TopologySpec, topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry
from repro.profiles.defaults import default_profiles
from repro.sim.faults import (
    ChaosEngine,
    ChaosSpec,
    FaultEvent,
    FaultTimeline,
    GuardConfig,
    run_chaos,
)
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps


def _deploy(spec, slos, seed=23, **topo_kwargs):
    profiles = default_profiles()
    topology = TopologySpec.from_flags(**topo_kwargs).build()
    chains = chains_from_spec(spec, slos=slos)
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    registry = MetricsRegistry()
    rack = DeployedRack(topology, artifacts, profiles, seed=seed,
                        registry=registry)
    return rack, placement, registry


class TestFaultTimeline:
    def test_json_roundtrip(self):
        timeline = FaultTimeline(events=(
            FaultEvent(at_packet=64, action="fail", target="server0"),
            FaultEvent(at_packet=128, action="degrade_link",
                       target="server0", severity=0.5),
        ), seed=7)
        parsed = FaultTimeline.parse_json(timeline.to_json())
        assert parsed == timeline

    def test_parse_rejects_garbage(self):
        with pytest.raises(FaultInjectionError):
            FaultTimeline.parse_json("not json")
        with pytest.raises(FaultInjectionError):
            FaultTimeline.parse_json(json.dumps(
                {"events": [{"action": "fail"}]}  # missing at_packet
            ))

    def test_parse_rejects_unknown_fields(self):
        doc = json.loads(FaultTimeline(events=(
            FaultEvent(at_packet=1, action="fail", target="server0"),
        )).to_json())
        top = dict(doc, blast_radius=3)
        with pytest.raises(FaultInjectionError, match="unknown fields"):
            FaultTimeline.from_dict(top)
        event = dict(doc)
        event["events"] = [dict(doc["events"][0], jitter=0.1)]
        with pytest.raises(FaultInjectionError, match="unknown fields"):
            FaultTimeline.from_dict(event)

    def test_parse_rejects_non_object(self):
        with pytest.raises(FaultInjectionError):
            FaultTimeline.parse_json("[1, 2]")

    def test_validate_rejects_bad_events(self):
        topology = topology_for("paper-smartnic").build()

        def check(event):
            with pytest.raises(FaultInjectionError):
                FaultTimeline(events=(event,)).validate(topology)

        check(FaultEvent(at_packet=1, action="explode", target="server0"))
        check(FaultEvent(at_packet=-1, action="fail", target="server0"))
        check(FaultEvent(at_packet=1, action="fail", target="tofino0"))
        check(FaultEvent(at_packet=1, action="degrade_link",
                         target="agilio0", severity=0.5))
        check(FaultEvent(at_packet=1, action="degrade_link",
                         target="server0", severity=1.5))
        check(FaultEvent(at_packet=1, action="lose_cores",
                         target="server0", severity=0))

    def test_validate_rejects_unknown_device(self):
        from repro.exceptions import TopologyError

        timeline = FaultTimeline(events=(
            FaultEvent(at_packet=1, action="fail", target="nosuch"),
        ))
        with pytest.raises(TopologyError):
            timeline.validate(topology_for("paper-testbed").build())

    def test_random_is_seed_deterministic(self):
        topology = topology_for("paper-smartnic").build()
        a = FaultTimeline.random(seed=5, topology=topology, n_events=3)
        b = FaultTimeline.random(seed=5, topology=topology, n_events=3)
        c = FaultTimeline.random(seed=6, topology=topology, n_events=3)
        assert a == b
        assert a != c
        a.validate(topology)


class TestRackFaultHooks:
    SPEC = "chain a: Encrypt -> IPv4Fwd"
    SLOS = [SLO(t_min=gbps(1), t_max=gbps(20))]

    def test_failed_device_drops_everything(self):
        rack, placement, registry = _deploy(self.SPEC, self.SLOS)
        (cp,) = placement.chains
        rack.set_device_failed("server0")
        outputs = rack.inject_batch(
            cp, [_chain_packet(cp.chain, i) for i in range(16)])
        assert all(out is None for out in outputs)
        assert registry.counter_value(
            "rack.packets.dropped", chain="a", reason="device_failed") == 16
        rack.set_device_failed("server0", failed=False)
        outputs = rack.inject_batch(
            cp, [_chain_packet(cp.chain, i) for i in range(16)])
        assert all(out is not None for out in outputs)

    def test_cannot_fail_the_switch(self):
        rack, _, _ = _deploy(self.SPEC, self.SLOS)
        with pytest.raises(DataplaneError):
            rack.set_device_failed("tofino0")

    def test_drop_fraction_bounds(self):
        rack, _, _ = _deploy(self.SPEC, self.SLOS)
        with pytest.raises(DataplaneError):
            rack.set_drop_fraction("server0", 1.5)
        with pytest.raises(DataplaneError):
            rack.set_drop_fraction("server0", -0.1)

    def test_partial_loss_is_deterministic_and_proportional(self):
        rack, placement, _ = _deploy(self.SPEC, self.SLOS)
        (cp,) = placement.chains
        rack.set_drop_fraction("server0", 0.5)
        outcomes = [
            rack.inject_batch(
                cp, [_chain_packet(cp.chain, i) for i in range(256)])
            for _ in range(1)
        ][0]
        delivered = sum(1 for out in outcomes if out is not None)
        # the integer-hash coin lands close to the requested fraction
        assert 0.35 < delivered / 256 < 0.65

        # a second rack with the same seed makes identical decisions
        other, placement2, _ = _deploy(self.SPEC, self.SLOS)
        (cp2,) = placement2.chains
        other.set_drop_fraction("server0", 0.5)
        repeat = other.inject_batch(
            cp2, [_chain_packet(cp2.chain, i) for i in range(256)])
        assert [out is None for out in outcomes] == \
            [out is None for out in repeat]

        # a different seed makes a different sequence of decisions
        reseeded, placement3, _ = _deploy(self.SPEC, self.SLOS, seed=29)
        (cp3,) = placement3.chains
        reseeded.set_drop_fraction("server0", 0.5)
        shifted = reseeded.inject_batch(
            cp3, [_chain_packet(cp3.chain, i) for i in range(256)])
        assert [out is None for out in outcomes] != \
            [out is None for out in shifted]

    def test_batch_and_scalar_paths_agree_under_faults(self):
        rack_a, placement_a, _ = _deploy(self.SPEC, self.SLOS)
        rack_b, placement_b, _ = _deploy(self.SPEC, self.SLOS)
        (cp_a,), (cp_b,) = placement_a.chains, placement_b.chains
        rack_a.set_drop_fraction("server0", 0.3)
        rack_b.set_drop_fraction("server0", 0.3)
        batch = rack_a.inject_batch(
            cp_a, [_chain_packet(cp_a.chain, i) for i in range(64)])
        scalar = [rack_b.inject(cp_b, _chain_packet(cp_b.chain, i))
                  for i in range(64)]
        assert [out is None for out in batch] == \
            [out is None for out in scalar]

    def test_clear_faults(self):
        rack, placement, _ = _deploy(self.SPEC, self.SLOS)
        (cp,) = placement.chains
        rack.set_device_failed("server0")
        rack.set_drop_fraction("server0", 0.9)
        rack.clear_faults()
        outputs = rack.inject_batch(
            cp, [_chain_packet(cp.chain, i) for i in range(32)])
        assert all(out is not None for out in outputs)


def _smartnic_spec(**overrides):
    base = dict(
        spec_text="chain c: BPF -> FastEncrypt -> IPv4Fwd",
        slos=((gbps(1), gbps(39)),),
        timeline=FaultTimeline(events=(
            FaultEvent(at_packet=128, action="fail", target="agilio0"),
        ), seed=23),
        packets_per_chain=384,
        flows_per_chain=16,
        batch_size=32,
        guard=GuardConfig(window_packets=64),
        with_smartnic=True,
    )
    base.update(overrides)
    return ChaosSpec(**base)


class TestChaosEngine:
    def test_guard_ladder_detect_degrade_replan(self):
        registry = MetricsRegistry()
        report = run_chaos(_smartnic_spec(), registry=registry)

        labels = [ph.label for ph in report.phases]
        assert labels == [
            "healthy", "fault:fail(agilio0)", "degraded", "replanned",
        ]
        assert report.violations >= 2
        assert report.degradations == 1
        assert report.replans == 1
        # the replanned phase meets every SLO again
        final = report.phases[-1]
        assert final.mode == "normal"
        assert final.compliant
        for row in final.chains:
            assert row.delivered_mbps >= final.t_mins[row.chain_name]
        # guard observability exported
        assert registry.counter_value("slo.violations", chain="c") >= 2
        assert registry.counter_value("replan.count") == 1
        assert registry.counter_value("guard.degradations") == 1
        assert registry.gauge_value("guard.degraded_mode") == 0

    def test_no_degrade_first_replans_directly(self):
        spec = _smartnic_spec(
            guard=GuardConfig(window_packets=64, degrade_first=False))
        report = run_chaos(spec)
        assert report.degradations == 0
        assert report.replans == 1
        assert [ph.label for ph in report.phases] == [
            "healthy", "fault:fail(agilio0)", "replanned",
        ]

    def test_lose_cores_replans_around_dead_cores(self):
        spec = ChaosSpec(
            spec_text="chain a: BPF -> FastEncrypt -> IPv4Fwd",
            slos=((gbps(1), gbps(10)),),
            timeline=FaultTimeline(events=(
                FaultEvent(at_packet=96, action="lose_cores",
                           target="server0", severity=6),
            ), seed=11),
            packets_per_chain=512, flows_per_chain=8, batch_size=32,
            guard=GuardConfig(window_packets=64), seed=11,
        )
        report = run_chaos(spec)
        assert report.replans == 1
        assert report.phases[-1].label == "replanned"
        assert report.phases[-1].compliant

    def test_recovery_event_restores_service(self):
        spec = _smartnic_spec(
            timeline=FaultTimeline(events=(
                FaultEvent(at_packet=128, action="fail", target="agilio0"),
                FaultEvent(at_packet=192, action="recover",
                           target="agilio0"),
            ), seed=23),
            # a huge window keeps the guard quiet: only events shape phases
            guard=GuardConfig(window_packets=10_000),
        )
        report = run_chaos(spec)
        assert [ph.label for ph in report.phases] == [
            "healthy", "fault:fail(agilio0)", "fault:recover(agilio0)",
        ]
        assert report.replans == 0
        assert report.phases[-1].compliant

    def test_infeasible_replan_exhausts_guard(self):
        # both the SmartNIC and the only server die: nothing survives
        spec = _smartnic_spec(
            timeline=FaultTimeline(events=(
                FaultEvent(at_packet=128, action="fail", target="agilio0"),
                FaultEvent(at_packet=128, action="fail", target="server0"),
            ), seed=23),
            guard=GuardConfig(window_packets=64, degrade_first=False),
        )
        report = run_chaos(spec)
        assert report.infeasible_replans >= 1
        assert any(ph.label == "replan-infeasible" for ph in report.phases)
        assert not report.phases[-1].compliant

    def test_report_is_deterministic(self):
        a = run_chaos(_smartnic_spec())
        b = run_chaos(_smartnic_spec())
        assert a.render() == b.render()
        assert a.to_json() == b.to_json()

    def test_spec_seed_reaches_rack_and_report(self):
        spec = ChaosSpec(
            spec_text="chain a: BPF -> FastEncrypt -> IPv4Fwd",
            slos=((gbps(1), gbps(10)),),
            timeline=FaultTimeline(events=(
                FaultEvent(at_packet=96, action="degrade_link",
                           target="server0", severity=0.8),
            ),),
            packets_per_chain=256, flows_per_chain=8, batch_size=32,
            guard=GuardConfig(window_packets=10_000),
            seed=29,
        )
        base = run_chaos(spec)
        same = run_chaos(spec)
        assert base.render() == same.render()
        assert base.seed == 29
        assert "seed=29" in base.render()
        # partial link loss produced shortfall drops in the fault phase
        fault_phase = base.phases[-1]
        (row,) = fault_phase.chains
        assert row.dropped > 0

    def test_slo_count_mismatch_rejected(self):
        with pytest.raises(FaultInjectionError):
            _smartnic_spec(slos=()).build_chains()

    def test_engine_validates_timeline_against_topology(self):
        chains = chains_from_spec(
            "chain a: ACL -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(10))],
        )
        timeline = FaultTimeline(events=(
            FaultEvent(at_packet=1, action="fail", target="agilio0"),
        ))
        with pytest.raises(Exception):
            # no SmartNIC in the default testbed
            ChaosEngine(chains, timeline, topology=topology_for("paper-testbed").build())

    def test_chaos_uses_placement_cache_across_engines(self):
        cache = PlacementCache()
        first = run_chaos(_smartnic_spec(), cache=cache)
        assert first.replan_cache_hits == 0
        second = run_chaos(_smartnic_spec(), cache=cache)
        # identical failure state fingerprints identically: warm replan
        assert second.replan_cache_hits == 1
        # the warm replan reproduces the cold run's traffic outcome exactly
        assert [ph.label for ph in second.phases] == \
            [ph.label for ph in first.phases]
        assert second.total_delivered == first.total_delivered
        assert second.phases[-1].compliant


class TestChaosCLI:
    def test_chaos_cli_smoke(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "one.lemur"
        spec.write_text("chain c: BPF -> FastEncrypt -> IPv4Fwd\n")
        out_file = tmp_path / "report.txt"
        code = main([
            "chaos", str(spec), "--tmin", "1", "--tmax", "39",
            "--smartnic", "--fail", "agilio0@128",
            "--packets", "384", "--flows", "16", "--batch", "32",
            "--window", "64", "--out", str(out_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "replanned" in out
        assert "== metrics ==" in out
        assert "slo.violations" in out
        # the artifact is the deterministic table, no wall-clock noise
        text = out_file.read_text()
        assert "chaos report (seed=23)" in text
        assert "replanned" in text

    def test_chaos_cli_timeline_file(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "one.lemur"
        spec.write_text("chain c: BPF -> FastEncrypt -> IPv4Fwd\n")
        timeline = tmp_path / "timeline.json"
        timeline.write_text(FaultTimeline(events=(
            FaultEvent(at_packet=128, action="fail", target="agilio0"),
        )).to_json())
        code = main([
            "chaos", str(spec), "--tmin", "1", "--tmax", "39",
            "--smartnic", "--timeline", str(timeline),
            "--packets", "384", "--flows", "16", "--batch", "32",
            "--window", "64", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["replans"] == 1
        assert payload["phases"][-1]["compliant"]

    def test_chaos_cli_rejects_malformed_event(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "one.lemur"
        spec.write_text("chain a: ACL -> IPv4Fwd\n")
        code = main(["chaos", str(spec), "--fail", "server0@notanumber"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
