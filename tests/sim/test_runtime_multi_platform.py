"""Cross-platform runtime edge cases: multi-server racks, stateful NFs on
the ToR, packet conservation."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def deploy(spec, profiles, topology=None, slos=None):
    topology = topology or topology_for("paper-testbed").build()
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(0.5), t_max=gbps(30))]
    )
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    return DeployedRack(topology, artifacts, profiles), placement


class TestMultiServerTracing:
    def test_chains_split_across_servers_deliver(self, profiles):
        topology = topology_for("multi-server").build()
        spec = (
            "chain a: ACL -> Encrypt -> IPv4Fwd\n"
            "chain b: BPF -> Dedup -> IPv4Fwd\n"
            "chain c: ACL -> UrlFilter -> IPv4Fwd"
        )
        slos = [SLO(t_min=gbps(1), t_max=gbps(30)),
                SLO(t_min=gbps(0.3), t_max=gbps(30)),
                SLO(t_min=gbps(1), t_max=gbps(30))]
        rack, placement = deploy(spec, profiles, topology, slos)
        servers_used = {
            sg.server for cp in placement.chains for sg in cp.subgroups
        }
        assert servers_used == {"server0", "server1"}  # really spread out
        traces = rack.trace_chains(placement, packets_per_chain=8)
        for trace in traces.values():
            assert trace.delivered == 8


class TestStatefulOnSwitch:
    def test_switch_nat_keeps_state_across_packets(self, profiles):
        """NAT placed on the PISA switch must still translate flows
        consistently (the functional model is shared state on the ToR)."""
        rack, placement = deploy(
            "chain c: ACL -> NAT -> IPv4Fwd", profiles
        )
        cp = placement.chains[0]
        nat_node = next(
            nid for nid, n in cp.chain.graph.nodes.items()
            if n.nf_class == "NAT"
        )
        assert cp.assignment[nat_node].platform is Platform.PISA
        from repro.net.packet import Packet
        outs = []
        for _ in range(3):
            pkt = Packet.build(src_ip="10.3.3.3", dst_ip="10.0.0.2",
                               src_port=999)
            outs.append(rack.inject(cp, pkt))
        ports = {out.udp.src_port for out in outs}
        assert len(ports) == 1  # same flow, same translation


class TestPacketConservation:
    def test_no_duplication_through_branches(self, profiles):
        """Exactly one packet egresses per injected packet (branch arms
        are exclusive, not multicast)."""
        rack, placement = deploy(
            "chain c: BPF -> [Encrypt, Monitor, Tunnel] -> IPv4Fwd",
            profiles,
        )
        cp = placement.chains[0]
        for index in range(12):
            out = rack.inject(cp, _chain_packet(cp.chain, index))
            assert out is not None  # exactly one, not a list

    def test_payload_integrity_through_encrypt_decrypt(self, profiles):
        rack, placement = deploy(
            "chain c: Encrypt -> Decrypt -> IPv4Fwd", profiles,
            slos=[SLO(t_min=gbps(0.5), t_max=gbps(18))],
        )
        cp = placement.chains[0]
        pkt = _chain_packet(cp.chain, 0)
        original_payload = pkt.payload
        out = rack.inject(cp, pkt)
        assert out is not None
        assert out.payload == original_payload

    def test_tunnel_detunnel_roundtrip_across_platforms(self, profiles):
        """Tunnel on the switch, Encrypt on the server, Detunnel on the
        switch: the VLAN tag must survive the NSH bounce."""
        rack, placement = deploy(
            "chain c: Tunnel -> Encrypt -> Detunnel -> IPv4Fwd", profiles
        )
        cp = placement.chains[0]
        pkt = _chain_packet(cp.chain, 0)
        assert pkt.vlan is None
        out = rack.inject(cp, pkt)
        assert out is not None
        assert out.vlan is None  # pushed then popped
        trail = out.metadata.processed_by
        assert len(trail) == 4
