"""Packet-level latency measurement vs the Placer's latency model."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def deploy(spec, profiles, slos=None):
    topology = topology_for("paper-testbed").build()
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(0.5), t_max=gbps(40))]
    )
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    return DeployedRack(topology, artifacts, profiles), placement


class TestLatencyStamping:
    def test_latency_recorded_on_egress(self, profiles):
        rack, placement = deploy("chain a: ACL -> Encrypt -> IPv4Fwd",
                                 profiles)
        cp = placement.chains[0]
        out = rack.inject(cp, _chain_packet(cp.chain, 0))
        assert out is not None
        latency = out.metadata.fields["latency_us"]
        assert latency > 0

    def test_measured_below_worst_case_model(self, profiles):
        """The Placer's latency estimate uses worst-case cycle costs, so
        rack-measured latency must not exceed it (same shape as the
        throughput conservatism of §5.2)."""
        rack, placement = deploy(
            "chain a: Encrypt -> ACL -> Dedup -> IPv4Fwd", profiles
        )
        cp = placement.chains[0]
        for index in range(8):
            out = rack.inject(cp, _chain_packet(cp.chain, index))
            assert out is not None
            measured = out.metadata.fields["latency_us"]
            assert measured <= cp.latency_us * 1.02

    def test_latency_grows_with_bounces(self, profiles):
        rack1, placement1 = deploy("chain a: ACL -> Encrypt -> IPv4Fwd",
                                   profiles)
        rack2, placement2 = deploy(
            "chain a: Encrypt -> ACL -> Dedup -> IPv4Fwd", profiles
        )
        cp1, cp2 = placement1.chains[0], placement2.chains[0]
        out1 = rack1.inject(cp1, _chain_packet(cp1.chain, 0))
        out2 = rack2.inject(cp2, _chain_packet(cp2.chain, 0))
        assert out2.metadata.fields["latency_us"] > \
            out1.metadata.fields["latency_us"]

    def test_all_switch_chain_is_fast(self, profiles):
        rack, placement = deploy("chain a: ACL -> NAT -> IPv4Fwd", profiles)
        cp = placement.chains[0]
        out = rack.inject(cp, _chain_packet(cp.chain, 0))
        # one switch pass, no bounces: transit only
        assert out.metadata.fields["latency_us"] < 2.0
