"""Testbed simulator and deployed-rack runtime tests."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.exceptions import DataplaneError
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack
from repro.sim.testbed import TestbedSimulator
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def place(spec, profiles, topology=None, slos=None):
    topology = topology or topology_for("paper-testbed").build()
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(1), t_max=gbps(40))]
    )
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    return topology, placement


class TestFluidMeasurement:
    def test_measured_close_to_predicted(self, profiles):
        topology, placement = place(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        sim = TestbedSimulator(topology=topology, profiles=profiles)
        report = sim.run(placement)
        (m,) = report.measurements
        assert m.achieved_mbps == pytest.approx(m.predicted_mbps, rel=0.10)

    def test_predictions_conservative_on_average(self, profiles):
        """§5.2: worst-case NUMA-diff profiles make predictions
        conservative; measured >= predicted most of the time."""
        topology, placement = place(
            "chain a: ACL -> Encrypt -> IPv4Fwd\n"
            "chain b: BPF -> Dedup -> IPv4Fwd",
            profiles,
            slos=[SLO(t_min=gbps(1), t_max=gbps(40)),
                  SLO(t_min=gbps(0.3), t_max=gbps(40))],
        )
        wins = 0
        for seed in range(8):
            sim = TestbedSimulator(topology=topology, profiles=profiles,
                                   seed=seed)
            report = sim.run(placement)
            if report.aggregate_throughput_mbps >= sum(
                m.predicted_mbps for m in report.measurements
            ):
                wins += 1
        assert wins >= 5

    def test_slos_met_on_feasible_placement(self, profiles):
        topology, placement = place(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        report = TestbedSimulator(topology=topology,
                                  profiles=profiles).run(placement)
        assert report.all_slos_met

    def test_infeasible_placement_refused(self, profiles):
        from repro.core.placement import Placement
        sim = TestbedSimulator(profiles=profiles)
        with pytest.raises(DataplaneError):
            sim.run(Placement(chains=[], feasible=False))

    def test_deterministic_for_seed(self, profiles):
        topology, placement = place(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        r1 = TestbedSimulator(topology=topology, profiles=profiles,
                              seed=9).run(placement)
        r2 = TestbedSimulator(topology=topology, profiles=profiles,
                              seed=9).run(placement)
        assert r1.aggregate_throughput_mbps == \
            pytest.approx(r2.aggregate_throughput_mbps)


class TestDeployedRack:
    def _rack(self, spec, profiles, topology=None, slos=None):
        topology, placement = place(spec, profiles, topology, slos)
        meta = MetaCompiler(topology=topology, profiles=profiles)
        artifacts = meta.compile_placement(placement)
        return DeployedRack(topology, artifacts, profiles), placement

    def test_linear_chain_delivery(self, profiles):
        rack, placement = self._rack(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        traces = rack.trace_chains(placement, packets_per_chain=16)
        assert traces["a"].delivered == 16
        # NF trail covers all three NFs in order
        trail = traces["a"].nf_trail
        assert len(trail) == 3

    def test_branch_chain_traffic_split(self, profiles):
        rack, placement = self._rack(
            "chain a: BPF -> [Encrypt, Monitor] -> IPv4Fwd", profiles,
            slos=[SLO(t_min=gbps(0.2), t_max=gbps(40))],
        )
        cp = placement.chains[0]
        chosen = set()
        for i in range(40):
            from repro.sim.runtime import _chain_packet
            pkt = _chain_packet(cp.chain, i)
            path = rack.classify(cp, pkt)
            chosen.add(path.spi)
        assert len(chosen) == 2  # both arms exercised

    def test_conditional_branch_classification(self, profiles):
        rack, placement = self._rack(
            "chain a: ACL -> [{'dst_port': 443}: Encrypt, default: pass]"
            " -> IPv4Fwd",
            profiles,
            slos=[SLO(t_min=gbps(0.2), t_max=gbps(40))],
        )
        from repro.net.packet import Packet
        cp = placement.chains[0]
        https = Packet.build(dst_port=443)
        http = Packet.build(dst_port=80)
        path_https = rack.classify(cp, https)
        path_http = rack.classify(cp, http)
        assert len(path_https.node_ids) == 3  # through Encrypt
        assert len(path_http.node_ids) == 2   # passthrough

    def test_acl_drop_counted(self, profiles):
        rack, placement = self._rack(
            "chain a: ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': True}])"
            " -> Encrypt -> IPv4Fwd",
            profiles,
            slos=[SLO(t_min=gbps(0.1), t_max=gbps(40))],
        )
        traces = rack.trace_chains(placement, packets_per_chain=10)
        assert traces["a"].dropped == 10  # generator targets 10.0.0.0/8

    def test_smartnic_in_path(self, profiles):
        topology = topology_for("paper-smartnic").build()
        rack, placement = self._rack(
            "chain a: BPF -> FastEncrypt -> IPv4Fwd", profiles,
            topology=topology,
            slos=[SLO(t_min=gbps(1), t_max=gbps(39))],
        )
        cp = placement.chains[0]
        from repro.hw.platform import Platform
        assert any(a.platform is Platform.SMARTNIC
                   for a in cp.assignment.values())
        traces = rack.trace_chains(placement, packets_per_chain=8)
        assert traces["a"].delivered == 8
        assert rack.nics["agilio0"].tx == 8

    def test_openflow_rack(self, profiles):
        topology = topology_for("paper-openflow").build()
        rack, placement = self._rack(
            "chain a: Detunnel -> Encrypt -> ACL", profiles,
            topology=topology,
            slos=[SLO(t_min=gbps(0.1), t_max=gbps(9))],
        )
        traces = rack.trace_chains(placement, packets_per_chain=8)
        assert traces["a"].delivered == 8

    def test_run_packets_via_testbed(self, profiles):
        topology, placement = place(
            "chain a: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        sim = TestbedSimulator(topology=topology, profiles=profiles)
        traces = sim.run_packets(placement, packets_per_chain=8)
        assert traces["a"].delivered == 8
