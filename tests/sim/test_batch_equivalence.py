"""Batch/serial equivalence: ``inject_batch`` must be indistinguishable
from a per-packet ``inject`` loop.

Two identical racks are deployed from the same placement; one processes a
packet stream serially, the other in batches. Delivered/dropped outcomes,
cycle charges (total and per device), per-hop records, final packet bytes,
and the *entire* metrics registry must match bit for bit — across RNG
seeds and all three platforms (server pipelines, SmartNIC program,
OpenFlow rules).
"""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import TopologySpec
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry
from repro.profiles.defaults import default_profiles
from repro.sim.columns import PacketColumns
from repro.sim.measurement import QueueingModel
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps

#: (label, spec, topology kwargs, SLO) — one scenario per platform plus a
#: branchy chain whose arms land on distinct service paths.
SCENARIOS = [
    (
        "server-branchy",
        "chain b: BPF -> [NAT -> IPv4Fwd, Encrypt -> IPv4Fwd]",
        {},
        SLO(t_min=gbps(0.5), t_max=gbps(30)),
    ),
    (
        "server-stateful",
        "chain x: Encrypt -> LB -> [NAT, NAT, NAT] -> IPv4Fwd",
        {},
        SLO(t_min=gbps(0.5), t_max=gbps(30)),
    ),
    (
        "smartnic",
        "chain a: BPF -> FastEncrypt -> IPv4Fwd",
        {"with_smartnic": True},
        SLO(t_min=gbps(1), t_max=gbps(39)),
    ),
    (
        "openflow",
        "chain a: Detunnel -> Encrypt -> ACL",
        {"with_openflow": True},
        SLO(t_min=gbps(0.1), t_max=gbps(9)),
    ),
]


def _deploy(spec, topo_kwargs, slo, seed):
    profiles = default_profiles()
    topology = TopologySpec.from_flags(**topo_kwargs).build()
    chains = chains_from_spec(spec, slos=[slo])
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    registry = MetricsRegistry()
    rack = DeployedRack(topology, artifacts, profiles, seed=seed,
                        registry=registry)
    return rack, placement.chains[0], registry


@pytest.mark.parametrize("seed", [7, 23, 101])
@pytest.mark.parametrize(
    "label,spec,topo_kwargs,slo",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_batch_matches_serial(label, spec, topo_kwargs, slo, seed):
    n_packets = 48
    serial_rack, serial_cp, serial_registry = _deploy(
        spec, topo_kwargs, slo, seed)
    serial_out = [
        serial_rack.inject(serial_cp, _chain_packet(serial_cp.chain, i))
        for i in range(n_packets)
    ]

    batch_rack, batch_cp, batch_registry = _deploy(
        spec, topo_kwargs, slo, seed)
    batch_out = batch_rack.inject_batch(
        batch_cp,
        [_chain_packet(batch_cp.chain, i) for i in range(n_packets)],
    )

    assert len(batch_out) == n_packets
    for index, (a, b) in enumerate(zip(serial_out, batch_out)):
        assert (a is None) == (b is None), f"packet {index} outcome differs"
        if a is None:
            continue
        assert a.metadata.cycles_consumed == b.metadata.cycles_consumed
        assert a.metadata.cycles_by_device == b.metadata.cycles_by_device
        assert a.metadata.fields.get("hops") == b.metadata.fields.get("hops")
        assert a.metadata.processed_by == b.metadata.processed_by
        assert a.data == b.data, f"packet {index} bytes differ"

    # the whole observability surface must agree: injected/delivered/drop
    # counters, per-device cycles, latency histograms, flow-cache stats
    assert serial_registry.dump_state() == batch_registry.dump_state()

    # device bookkeeping outside the registry (module rx/tx, NIC/OF
    # runtime counters) must agree too
    assert serial_rack.device_stats() == batch_rack.device_stats()


def test_batch_in_two_halves_matches_one_batch():
    """Splitting the same stream into multiple inject_batch calls does not
    change outcomes (state carries across calls exactly as serially)."""
    spec = "chain x: Encrypt -> LB -> [NAT, NAT, NAT] -> IPv4Fwd"
    slo = SLO(t_min=gbps(0.5), t_max=gbps(30))
    rack_a, cp_a, reg_a = _deploy(spec, {}, slo, seed=23)
    rack_b, cp_b, reg_b = _deploy(spec, {}, slo, seed=23)

    packets_a = [_chain_packet(cp_a.chain, i) for i in range(32)]
    packets_b = [_chain_packet(cp_b.chain, i) for i in range(32)]
    whole = rack_a.inject_batch(cp_a, packets_a)
    halves = (rack_b.inject_batch(cp_b, packets_b[:16])
              + rack_b.inject_batch(cp_b, packets_b[16:]))

    for a, b in zip(whole, halves):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.data == b.data
            assert a.metadata.cycles_consumed == b.metadata.cycles_consumed
    assert reg_a.dump_state() == reg_b.dump_state()


def test_empty_batch_is_noop():
    spec = "chain a: BPF -> FastEncrypt -> IPv4Fwd"
    rack, cp, registry = _deploy(
        spec, {"with_smartnic": True},
        SLO(t_min=gbps(1), t_max=gbps(39)), seed=23)
    before = registry.dump_state()
    assert rack.inject_batch(cp, []) == []
    assert registry.dump_state() == before


def _target_device(rack):
    """A device on the chain's path to fault: prefer a NIC, else a server."""
    if rack.nics:
        return next(iter(rack.nics))
    return next(iter(rack.servers))


def _queueing_utilization(rack):
    """A deterministic non-uniform utilization map over every device the
    rack can charge cycles to (servers, NICs, and the ToR)."""
    devices = sorted(rack.servers) + sorted(rack.nics)
    devices.append(rack.topology.switch.name)
    return {name: 0.25 + 0.15 * (i % 4)
            for i, name in enumerate(devices)}


def _scalar_vs_columnar(spec, topo_kwargs, slo, seed, *, n_flows=6, reps=8,
                        fault=None, queueing=False, interrack=False):
    """Drive identical racks through the scalar batch path and the
    columnar path and assert bit-identity on every observable surface."""
    n_packets = n_flows * reps
    scalar_rack, scalar_cp, scalar_registry = _deploy(
        spec, topo_kwargs, slo, seed)
    vector_rack, vector_cp, vector_registry = _deploy(
        spec, topo_kwargs, slo, seed)
    if interrack:
        # the chain is homed off the fabric ingress: every packet crosses
        # an inter-rack link (stamped RTT) and a quarter are shed at the
        # fabric ingress for link-capacity shortfall
        for rack, cp in ((scalar_rack, scalar_cp),
                         (vector_rack, vector_cp)):
            rack.set_interrack_hop(cp.name, "r0~r1", 50.0,
                                   drop_fraction=0.25)
    if queueing:
        model = QueueingModel(kind="mm1")
        scalar_rack.configure_queueing(
            model, _queueing_utilization(scalar_rack))
        vector_rack.configure_queueing(
            model, _queueing_utilization(vector_rack))
    if fault == "loss":
        scalar_rack.set_drop_fraction(_target_device(scalar_rack), 0.35)
        vector_rack.set_drop_fraction(_target_device(vector_rack), 0.35)
    elif fault == "failed":
        scalar_rack.set_device_failed(_target_device(scalar_rack))
        vector_rack.set_device_failed(_target_device(vector_rack))

    scalar_out = scalar_rack.inject_batch(
        scalar_cp,
        [_chain_packet(scalar_cp.chain, i % n_flows) for i in range(n_packets)],
    )
    flows = [_chain_packet(vector_cp.chain, i) for i in range(n_flows)]
    columns = PacketColumns.for_flows(
        flows, [i % n_flows for i in range(n_packets)])
    vector_out = vector_rack.run_columns(vector_cp, columns).materialize()

    assert len(vector_out) == n_packets
    for index, (a, b) in enumerate(zip(scalar_out, vector_out)):
        assert (a is None) == (b is None), f"packet {index} outcome differs"
        if a is None:
            continue
        assert a.data == b.data, f"packet {index} bytes differ"
        assert a.metadata.cycles_consumed == b.metadata.cycles_consumed
        assert a.metadata.cycles_by_device == b.metadata.cycles_by_device
        assert a.metadata.processed_by == b.metadata.processed_by
        assert dict(a.metadata.fields) == dict(b.metadata.fields)
    assert scalar_registry.dump_state() == vector_registry.dump_state()
    assert scalar_rack.device_stats() == vector_rack.device_stats()


@pytest.mark.parametrize("seed", [7, 23, 101])
@pytest.mark.parametrize(
    "label,spec,topo_kwargs,slo",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_columnar_matches_scalar(label, spec, topo_kwargs, slo, seed):
    """Vectorized tier: the columnar fast path is bit-identical to the
    scalar batch path across all three platforms — including the branchy
    chain (divergence re-split) and the stateful chain (scalar fallback)."""
    _scalar_vs_columnar(spec, topo_kwargs, slo, seed)


@pytest.mark.parametrize("fault", ["loss", "failed"])
@pytest.mark.parametrize(
    "label,spec,topo_kwargs,slo",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_columnar_matches_scalar_under_faults(label, spec, topo_kwargs, slo,
                                              fault):
    """Active ``set_drop_fraction`` / ``set_device_failed`` faults hit the
    columnar path through the same seeded per-packet hash as the scalar
    path, so drops land on the same sequence numbers."""
    _scalar_vs_columnar(spec, topo_kwargs, slo, seed=23, fault=fault)


@pytest.mark.parametrize("seed", [7, 23, 101])
@pytest.mark.parametrize(
    "label,spec,topo_kwargs,slo",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_columnar_matches_scalar_with_queueing(label, spec, topo_kwargs,
                                               slo, seed):
    """Latency tier: with the M/M/1 queueing model active on every
    device, the scalar and columnar paths stamp bit-identical
    ``queue_us``/``latency_us`` fields and histograms — the per-packet
    field comparison and the registry dump inside the driver cover both."""
    _scalar_vs_columnar(spec, topo_kwargs, slo, seed, queueing=True)


@pytest.mark.parametrize("seed", [7, 23])
@pytest.mark.parametrize(
    "label,spec,topo_kwargs,slo",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_columnar_matches_scalar_across_interrack_hop(label, spec,
                                                      topo_kwargs, slo,
                                                      seed):
    """Multi-rack tier: with an inter-rack hop installed (stamped link
    RTT + capacity-shortfall drops at the fabric ingress), the columnar
    path sheds the same sequence numbers and stamps the same
    ``interrack_us`` component as the scalar path — packet fields, the
    ``interrack.packets``/``interrack.drops`` counters, and the latency
    histograms are all compared bit for bit."""
    _scalar_vs_columnar(spec, topo_kwargs, slo, seed, interrack=True)


def test_columnar_matches_scalar_interrack_with_queueing():
    """The stamped inter-rack RTT composes with the M/M/1 queueing model
    identically on both paths."""
    _label, spec, topo_kwargs, slo = SCENARIOS[1]
    _scalar_vs_columnar(spec, topo_kwargs, slo, seed=7,
                        interrack=True, queueing=True)


def test_columnar_interleaves_with_scalar():
    """Mixing scalar and columnar injections on one rack keeps sequence
    numbering, flow-cache, and RNG state aligned with an all-scalar twin."""
    _label, spec, topo_kwargs, slo = SCENARIOS[2]
    rack_a, cp_a, reg_a = _deploy(spec, topo_kwargs, slo, seed=23)
    rack_b, cp_b, reg_b = _deploy(spec, topo_kwargs, slo, seed=23)

    flows_a = [_chain_packet(cp_a.chain, i) for i in range(4)]
    flows_b = [_chain_packet(cp_b.chain, i) for i in range(4)]
    sig = [i % 4 for i in range(24)]
    mixed = rack_a.inject_batch(cp_a, [flows_a[s].copy() for s in sig])
    mixed += rack_a.run_columns(
        cp_a, PacketColumns.for_flows(flows_a, sig)).materialize()
    scalar = rack_b.inject_batch(cp_b, [flows_b[s].copy() for s in sig * 2])

    for a, b in zip(mixed, scalar):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.data == b.data
            assert a.metadata.cycles_consumed == b.metadata.cycles_consumed
    assert reg_a.dump_state() == reg_b.dump_state()


def test_flow_cache_hits_on_repeated_flows():
    spec = "chain a: BPF -> FastEncrypt -> IPv4Fwd"
    rack, cp, registry = _deploy(
        spec, {"with_smartnic": True},
        SLO(t_min=gbps(1), t_max=gbps(39)), seed=23)
    # 4 distinct flows replayed 8 times each
    packets = [_chain_packet(cp.chain, i % 4) for i in range(32)]
    rack.inject_batch(cp, packets)
    hits = registry.counter_value("rack.flow_cache.lookups", result="hit")
    misses = registry.counter_value("rack.flow_cache.lookups", result="miss")
    assert misses == 4
    assert hits == 28
