"""Fabric runtime: stitched traffic replay, chaos, and chain lifecycle."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.exceptions import (
    FaultInjectionError,
    LifecycleError,
    TopologyError,
)
from repro.hw.multirack import MultiRackTopology
from repro.hw.spec import topology_for
from repro.obs import MetricsRegistry
from repro.sim.admission import AdmissionCore, ChainEvent
from repro.sim.faults import ChaosSpec, FaultEvent, FaultTimeline
from repro.sim.interrack import (
    FabricAdmissionCore,
    make_admission_core,
    run_fabric_chaos,
    run_fabric_traffic,
)
from repro.sim.traffic import TrafficSpec

SPEC6 = "\n".join(
    f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd" for i in range(6)
)
SLOS6 = tuple((4000.0, 9000.0, 400.0) for _ in range(6))


def _chains(n, t_min=4000.0):
    spec = "\n".join(
        f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd" for i in range(n)
    )
    return chains_from_spec(
        spec, slos=[SLO(t_min=t_min, t_max=9000.0, d_max=400.0)
                    for _ in range(n)]
    )


def _traffic_spec(**overrides):
    defaults = dict(
        spec_text=SPEC6, slos=SLOS6,
        topology=topology_for("two-rack"),
        packets_per_chain=96, flows_per_chain=8, batch_size=16, seed=7,
    )
    defaults.update(overrides)
    return TrafficSpec(**defaults)


class TestFabricTraffic:
    def test_remote_chain_carries_link_latency(self):
        fabric = topology_for("two-rack").build()
        report = run_fabric_traffic(
            _traffic_spec(), fabric, registry=MetricsRegistry()
        )
        assert report.ok
        remote = set(report.solve.placement.remote)
        assert remote  # the rack overflows, someone pays the RTT
        rows = {row.chain_name: row for row in report.report.chains}
        assert set(rows) == {f"c{i}" for i in range(6)}
        for name, row in rows.items():
            # rows restore the END-TO-END budget, not the shrunk one
            assert row.latency_slo_us == 400.0
            if name in remote:
                assert report.assignment[name] == "r1"
                # the stamped RTT (2 x 50 µs) dominates the local path
                assert row.latency_p99_us >= 100.0
            else:
                assert report.assignment[name] == "r0"
                assert row.latency_p99_us < 100.0

    def test_replay_is_deterministic(self):
        first = run_fabric_traffic(
            _traffic_spec(), topology_for("two-rack").build(),
            registry=MetricsRegistry(),
        )
        second = run_fabric_traffic(
            _traffic_spec(), topology_for("two-rack").build(),
            registry=MetricsRegistry(),
        )
        a, b = first.as_dict(), second.as_dict()
        a.pop("run_wall_seconds", None), b.pop("run_wall_seconds", None)
        assert a == b

    def test_report_surfaces_route_and_mode(self):
        report = run_fabric_traffic(
            _traffic_spec(), topology_for("two-rack").build(),
            registry=MetricsRegistry(),
        )
        payload = report.as_dict()
        assert payload["mode"] == "hierarchical"
        assert payload["racks"] == report.assignment
        text = report.render()
        assert "r0~r1" in text and "µs RTT" in text


class TestFabricChaos:
    def _chaos_spec(self, events):
        return ChaosSpec(
            spec_text=SPEC6, slos=SLOS6,
            topology=topology_for("two-rack"),
            timeline=FaultTimeline(events=tuple(events), seed=7),
            packets_per_chain=128, flows_per_chain=8, batch_size=16, seed=7,
        )

    def test_events_split_by_home_rack(self):
        spec = self._chaos_spec([
            FaultEvent(at_packet=32, action="degrade_link",
                       target="r0.server0", severity=0.3),
            FaultEvent(at_packet=48, action="degrade_link",
                       target="r1.server0", severity=0.3),
            FaultEvent(at_packet=96, action="restore_link",
                       target="r0.server0"),
        ])
        report = run_fabric_chaos(
            spec, topology_for("two-rack").build(),
            registry=MetricsRegistry(),
        )
        assert set(report.racks) == {"r0", "r1"}
        assert not report.dropped_events
        assert report.total_injected > 0
        assert report.assignment["c5"] == "r1"
        text = report.render()
        assert "-- rack r0 --" in text and "-- rack r1 --" in text
        assert "fabric totals" in text

    def test_unknown_target_rejected(self):
        spec = self._chaos_spec([
            FaultEvent(at_packet=32, action="degrade_link",
                       target="r9.server0", severity=0.3),
        ])
        with pytest.raises(FaultInjectionError):
            run_fabric_chaos(spec, topology_for("two-rack").build(),
                             registry=MetricsRegistry())

    def test_chaos_is_deterministic(self):
        events = [
            FaultEvent(at_packet=32, action="degrade_link",
                       target="r0.server0", severity=0.4),
            FaultEvent(at_packet=96, action="restore_link",
                       target="r0.server0"),
        ]
        runs = [
            run_fabric_chaos(
                self._chaos_spec(events),
                topology_for("two-rack").build(),
                registry=MetricsRegistry(),
            ).to_json()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestAdmissionFactory:
    def test_fabric_topology_gets_fabric_core(self):
        core = make_admission_core(
            _chains(2), topology=topology_for("two-rack").build(), seed=7,
        )
        assert isinstance(core, FabricAdmissionCore)

    def test_plain_topology_gets_single_rack_core(self):
        core = make_admission_core(
            _chains(1), topology=topology_for("paper-testbed").build(),
            seed=7,
        )
        assert isinstance(core, AdmissionCore)

    def test_one_rack_fabric_degenerates(self):
        rack = topology_for("paper-testbed").build()
        fabric = MultiRackTopology(racks={"r0": rack}, links=[],
                                   ingress="r0")
        core = make_admission_core(_chains(1), topology=fabric, seed=7)
        assert isinstance(core, AdmissionCore)
        assert not isinstance(core, FabricAdmissionCore)

    def test_fabric_core_requires_fabric(self):
        with pytest.raises(LifecycleError, match="MultiRackTopology"):
            FabricAdmissionCore(
                _chains(1),
                topology=topology_for("paper-testbed").build(),
            )


class TestFabricLifecycle:
    def _core(self, n=6, **kwargs):
        defaults = dict(
            topology=topology_for("two-rack").build(),
            flows_per_chain=8, batch_size=16, seed=7,
            registry=MetricsRegistry(),
        )
        defaults.update(kwargs)
        core = FabricAdmissionCore(_chains(n), **defaults)
        core.bootstrap()
        return core

    def _arrive(self, name, t_min=4000.0, at=1):
        return ChainEvent(
            at=at, action="arrive", chain=name,
            spec=f"chain {name}: ACL(rules=64) -> Encrypt -> IPv4Fwd",
            t_min_mbps=t_min, t_max_mbps=9000.0, d_max_us=400.0,
        )

    def _saturate_ingress(self, core):
        """Fill r0 to its true capacity (the partition proxy spills at 6
        chains, the real rack solve at 8): after c6/c7 land on r0 it
        holds 7 chains and the next 4 Gbps arrival must go elsewhere."""
        for name in ("c6", "c7"):
            decision = core.process(self._arrive(name))
            assert decision.accepted and core.assignment[name] == "r0"

    def test_bootstrap_spills_overflow(self):
        core = self._core()
        assert set(core.assignment.values()) == {"r0", "r1"}
        assert set(core.cores) == {"r0", "r1"}
        placement = core.placement
        assert placement.aggregate_rate > 0
        assert "r1" in placement.describe()

    def test_arrival_spills_when_ingress_is_full(self):
        core = self._core()
        self._saturate_ingress(core)
        decision = core.process(self._arrive("c8", at=3))
        assert decision.accepted, decision.reason
        assert core.assignment["c8"] == "r1"
        assert core.obs.counter_value("lifecycle.spills") >= 1

    def test_latency_budget_bounds_arrivals(self):
        """An arrival whose d_max is inside the fabric RTT can only land
        on the ingress; once that is full it is rejected with the RTT in
        the reason."""
        core = self._core()
        self._saturate_ingress(core)
        tight = ChainEvent(
            at=3, action="arrive", chain="tight",
            spec="chain tight: ACL(rules=64) -> Encrypt -> IPv4Fwd",
            t_min_mbps=4000.0, t_max_mbps=9000.0, d_max_us=90.0,
        )
        decision = core.process(tight)
        assert not decision.accepted
        assert "inter-rack RTT" in decision.reason

    def test_scale_migrates_off_saturated_rack(self):
        """The proven recipe: saturate the ingress, then scale one of its
        chains past what it can absorb — the chain moves to r1."""
        core = self._core()
        self._saturate_ingress(core)
        assert core.assignment["c1"] == "r0"
        decision = core.process(ChainEvent(
            at=3, action="scale", chain="c1", t_min_mbps=12000.0,
        ))
        assert decision.accepted, decision.reason
        assert decision.mode == "migrate:r0->r1"
        assert core.assignment["c1"] == "r1"
        assert core.obs.counter_value("lifecycle.migrations") == 1

    def test_last_depart_tears_down_rack(self):
        core = self._core(2)  # both chains fit the ingress
        decision = core.process(self._arrive("c6"))
        rack = core.assignment["c6"]
        departed = core.process(ChainEvent(
            at=2, action="depart", chain="c6",
        ))
        assert departed.accepted
        if rack != "r0":
            assert departed.mode == "teardown"
            assert rack not in core.cores
        assert "c6" not in core.assignment

    def test_phase_rows_restore_end_to_end_budget(self):
        core = self._core()
        phase = core.run_phase("steady", 64, index=0)
        rows = {row.chain_name: row for row in phase.chains}
        assert set(rows) == {f"c{i}" for i in range(6)}
        for name, row in rows.items():
            assert row.latency_slo_us == 400.0
            if core.assignment[name] == "r1":
                assert row.latency_p99_us >= 100.0

    def test_fault_routed_to_hosting_rack(self):
        core = self._core()
        core.apply_fault("degrade_link", "r1.server0", 0.4)
        assert core.fault_state  # surfaced on the fabric view
        with pytest.raises(TopologyError):
            core.apply_fault("degrade_link", "r9.server0", 0.4)

    def test_fault_on_empty_rack_rejected(self):
        core = self._core(2)  # both chains fit the ingress; r1 is empty
        assert set(core.cores) == {"r0"}
        with pytest.raises(FaultInjectionError, match="hosts no chains"):
            core.apply_fault("degrade_link", "r1.server0", 0.4)

    def test_state_digest_replays_identically(self):
        def scripted():
            core = self._core()
            core.process(self._arrive("c6"))
            core.process(ChainEvent(at=2, action="scale", chain="c1",
                                    t_min_mbps=6000.0))
            core.process(ChainEvent(at=3, action="depart", chain="c6"))
            return core

        assert scripted().state_digest() == scripted().state_digest()

    def test_duplicate_arrival_rejected(self):
        core = self._core()
        decision = core.process(self._arrive("c0"))
        assert not decision.accepted
        assert "already active" in decision.reason
