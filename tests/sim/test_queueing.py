"""Queueing-aware delay model: unit curve + rack stamping invariants.

The tentpole contract: ``kind="none"`` (and any zero-utilization
configuration) is byte-identical to the historical fixed-cost latency
model, the M/M/1 factor is monotone in utilization and clamped at
``max_utilization``, and an enabled model raises stamped latencies
strictly and deterministically.
"""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry
from repro.profiles.defaults import default_profiles
from repro.sim.measurement import QUEUEING_MODELS, QueueingModel
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps


# ---------------------------------------------------------------------------
# the delay curve
# ---------------------------------------------------------------------------


def test_none_model_factor_is_zero_everywhere():
    model = QueueingModel()
    assert not model.enabled
    for rho in (0.0, 0.3, 0.95, 2.0):
        assert model.delay_factor(rho) == 0.0


@pytest.mark.parametrize("rho,expected", [
    (0.0, 0.0),
    (0.5, 1.0),          # rho/(1-rho): half load doubles the sojourn
    (0.75, 3.0),
    (0.9, 9.0),
])
def test_mm1_factor_values(rho, expected):
    assert QueueingModel(kind="mm1").delay_factor(rho) == \
        pytest.approx(expected)


def test_mm1_factor_monotone_in_utilization():
    model = QueueingModel(kind="mm1")
    grid = [i / 20 for i in range(20)]
    factors = [model.delay_factor(rho) for rho in grid]
    assert factors == sorted(factors)
    assert factors[0] == 0.0
    assert model.delay_factor(-0.5) == 0.0


def test_mm1_factor_saturation_clamp():
    model = QueueingModel(kind="mm1", max_utilization=0.95)
    ceiling = model.delay_factor(0.95)
    assert ceiling == pytest.approx(0.95 / 0.05)
    # overload stays large-but-finite instead of a 1/(1-rho) singularity
    for rho in (0.99, 1.0, 5.0):
        assert model.delay_factor(rho) == ceiling


def test_model_validation():
    with pytest.raises(ValueError, match="unknown queueing model"):
        QueueingModel(kind="md1")
    with pytest.raises(ValueError, match="max_utilization"):
        QueueingModel(kind="mm1", max_utilization=1.0)
    assert set(QUEUEING_MODELS) == {"none", "mm1"}


# ---------------------------------------------------------------------------
# rack stamping
# ---------------------------------------------------------------------------


def _deploy(spec, slo, seed=23):
    profiles = default_profiles()
    topology = topology_for("paper-testbed").build()
    chains = chains_from_spec(spec, slos=[slo])
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    registry = MetricsRegistry()
    rack = DeployedRack(topology, artifacts, profiles, seed=seed,
                        registry=registry)
    return rack, placement.chains[0], registry


_SPEC = "chain a: Encrypt -> IPv4Fwd"
_SLO = SLO(t_min=gbps(0.5), t_max=gbps(30))


def _latencies(rack, cp, n=24):
    out = rack.inject_batch(
        cp, [_chain_packet(cp.chain, i % 4) for i in range(n)])
    return [p.metadata.fields["latency_us"] for p in out if p is not None]


@pytest.mark.parametrize("configure", ["untouched", "none", "mm1-zero"])
def test_zero_utilization_matches_fixed_cost_baseline(configure):
    """The fixed-cost baseline is preserved bit-for-bit by the identity
    model AND by an enabled model at zero utilization."""
    base_rack, base_cp, base_reg = _deploy(_SPEC, _SLO)
    rack, cp, reg = _deploy(_SPEC, _SLO)
    if configure == "none":
        rack.configure_queueing(QueueingModel())
    elif configure == "mm1-zero":
        rack.configure_queueing(
            QueueingModel(kind="mm1"),
            {name: 0.0 for name in rack.servers},
        )
    base = _latencies(base_rack, base_cp)
    got = _latencies(rack, cp)
    assert got == base  # bit-identical, not approx
    for packet_latencies in (got,):
        assert all(lat > 0.0 for lat in packet_latencies)
    assert reg.dump_state() == base_reg.dump_state()


def test_enabled_queueing_raises_latency_monotonically():
    stamped = {}
    for rho in (0.0, 0.3, 0.6, 0.9):
        rack, cp, _ = _deploy(_SPEC, _SLO)
        rack.configure_queueing(
            QueueingModel(kind="mm1"),
            {name: rho for name in rack.servers},
        )
        stamped[rho] = sum(_latencies(rack, cp))
    assert stamped[0.0] < stamped[0.3] < stamped[0.6] < stamped[0.9]


def test_queue_component_is_exec_times_factor():
    """Per-packet decomposition: queue_us == exec_us * factor when one
    uniform factor covers every charged device, and the total re-adds."""
    rho = 0.5
    rack, cp, _ = _deploy(_SPEC, _SLO)
    devices = {*rack.servers, *rack.nics, rack.topology.switch.name}
    rack.configure_queueing(
        QueueingModel(kind="mm1"), {name: rho for name in devices})
    factor = QueueingModel(kind="mm1").delay_factor(rho)
    out = rack.inject_batch(
        cp, [_chain_packet(cp.chain, i % 4) for i in range(16)])
    for packet in out:
        if packet is None:
            continue
        fields = packet.metadata.fields
        assert fields["queue_us"] == \
            pytest.approx(fields["exec_us"] * factor)
        assert fields["latency_us"] == pytest.approx(
            fields["exec_us"] + fields["queue_us"]
            + fields["bounce_us"] + fields["switch_us"])


def test_reset_state_clears_queueing():
    rack, cp, _ = _deploy(_SPEC, _SLO)
    rack.configure_queueing(
        QueueingModel(kind="mm1"), {name: 0.8 for name in rack.servers})
    rack.reset_state()
    fresh_rack, fresh_cp, _ = _deploy(_SPEC, _SLO)
    assert _latencies(rack, cp) == _latencies(fresh_rack, fresh_cp)
