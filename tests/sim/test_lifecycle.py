"""Online chain lifecycle: admission, incremental placement, delta
redeploy, and deterministic reporting."""

from dataclasses import replace

import pytest

from repro.chain.slo import SLO
from repro.exceptions import LifecycleError
from repro.obs import MetricsRegistry
from repro.sim.lifecycle import (
    ChainEvent,
    LifecycleSpec,
    LifecycleTimeline,
    run_lifecycle,
    run_lifecycle_checked,
)
from repro.units import gbps

SPEC = (
    "chain alpha: ACL -> Encrypt -> IPv4Fwd\n"
    "chain beta: BPF -> NAT -> IPv4Fwd\n"
)

GAMMA = ChainEvent(
    at=1, action="arrive", chain="gamma",
    spec="chain gamma: Monitor -> IPv4Fwd",
    t_min_mbps=gbps(0.5), t_max_mbps=gbps(30),
)


def make_spec(events, slos=((gbps(1), gbps(50)), (gbps(1), gbps(50))),
              **kwargs):
    return LifecycleSpec(
        spec_text=SPEC,
        slos=slos,
        timeline=LifecycleTimeline(events=tuple(events), seed=23),
        packets_per_phase=kwargs.pop("packets_per_phase", 32),
        **kwargs,
    )


def run(spec):
    return run_lifecycle(spec, registry=MetricsRegistry())


class TestTimeline:
    def test_json_round_trip(self):
        timeline = LifecycleTimeline(events=(
            GAMMA,
            ChainEvent(at=2, action="scale", chain="alpha",
                       t_min_mbps=2000.0),
            ChainEvent(at=3, action="depart", chain="gamma"),
        ), seed=7)
        again = LifecycleTimeline.parse_json(timeline.to_json())
        assert again == timeline

    def test_parse_rejects_unknown_fields(self):
        import json

        doc = json.loads(LifecycleTimeline(events=(GAMMA,)).to_json())
        with pytest.raises(LifecycleError, match="unknown fields"):
            LifecycleTimeline.from_dict(dict(doc, tempo=1))
        bad_event = dict(doc)
        bad_event["events"] = [dict(doc["events"][0], priority=2)]
        with pytest.raises(LifecycleError, match="unknown fields"):
            LifecycleTimeline.from_dict(bad_event)

    def test_parse_rejects_non_object(self):
        with pytest.raises(LifecycleError):
            LifecycleTimeline.parse_json("42")

    def test_same_tick_orders_departures_first(self):
        timeline = LifecycleTimeline(events=(
            ChainEvent(at=1, action="arrive", chain="dyn0",
                       spec="chain dyn0: Monitor -> IPv4Fwd",
                       t_min_mbps=100.0),
            ChainEvent(at=1, action="depart", chain="alpha"),
        ))
        assert [ev.action for ev in timeline.sorted_events()] == \
            ["depart", "arrive"]

    @pytest.mark.parametrize("event,fragment", [
        (ChainEvent(at=1, action="evict", chain="x"), "unknown"),
        (ChainEvent(at=-1, action="depart", chain="x"), "tick"),
        (ChainEvent(at=1, action="arrive", chain="x", t_min_mbps=1.0),
         "no chain spec"),
        (ChainEvent(at=1, action="arrive", chain="x",
                    spec="chain y: ACL -> IPv4Fwd", t_min_mbps=1.0),
         "exactly that one chain"),
        (ChainEvent(at=1, action="arrive", chain="x",
                    spec="chain x: ACL -> IPv4Fwd"), "t_min"),
        (ChainEvent(at=1, action="scale", chain="x"), "t_min"),
    ])
    def test_validation_rejects(self, event, fragment):
        with pytest.raises(LifecycleError, match=fragment):
            LifecycleTimeline(events=(event,)).validate()

    def test_random_is_seed_deterministic(self):
        a = LifecycleTimeline.random(5, n_events=10, base_names=("alpha",))
        b = LifecycleTimeline.random(5, n_events=10, base_names=("alpha",))
        assert a == b
        assert len(a.events) == 10
        a.validate()
        c = LifecycleTimeline.random(6, n_events=10, base_names=("alpha",))
        assert c != a


class TestAdmission:
    def test_arrival_accepted_incrementally(self):
        report = run(make_spec([GAMMA]))
        (decision,) = report.decisions
        assert decision.accepted
        assert decision.mode == "incremental"
        assert decision.pinned == 2 and decision.placed == 1
        assert decision.rebuilt  # something changed on the rack
        # gamma is live and served at or above t_min in the new phase
        last = report.phases[-1]
        assert {row.chain_name for row in last.chains} == \
            {"alpha", "beta", "gamma"}
        assert last.compliant

    def test_arrival_feasible_only_after_same_tick_departure(self):
        # Five Encrypt chains at a 5G floor occupy every server core;
        # a sixth fits only once one of them releases its cores, and
        # departures are processed before arrivals within a tick.
        n = 5
        steady = LifecycleSpec(
            spec_text="\n".join(
                f"chain c{i}: Encrypt -> NAT -> IPv4Fwd" for i in range(n)),
            slos=tuple((gbps(5), gbps(6)) for _ in range(n)),
            timeline=LifecycleTimeline(events=()),
            packets_per_phase=32,
        )
        arrival = ChainEvent(
            at=1, action="arrive", chain="gamma",
            spec="chain gamma: Encrypt -> NAT -> IPv4Fwd",
            t_min_mbps=gbps(5), t_max_mbps=gbps(6),
        )
        rejected = run(replace(
            steady, timeline=LifecycleTimeline(events=(arrival,))))
        (decision,) = rejected.decisions
        assert not decision.accepted
        assert "not enough cores" in decision.reason
        # the running chains were untouched by the rejection
        assert rejected.phases[-1].compliant
        assert {row.chain_name for row in rejected.phases[-1].chains} == \
            {f"c{i}" for i in range(n)}

        paired = run(replace(steady, timeline=LifecycleTimeline(events=(
            arrival, ChainEvent(at=1, action="depart", chain="c0")))))
        departs, arrives = paired.decisions
        assert departs.action == "depart" and departs.accepted
        assert arrives.action == "arrive" and arrives.accepted
        assert {row.chain_name for row in paired.phases[-1].chains} == \
            {f"c{i}" for i in range(1, n)} | {"gamma"}
        assert paired.phases[-1].compliant

    def test_scale_up_rejects_instead_of_evicting(self):
        slos = ((gbps(20), gbps(50)), (gbps(15), gbps(50)))
        report = run(make_spec(
            [ChainEvent(at=1, action="scale", chain="alpha",
                        t_min_mbps=gbps(33))],
            slos=slos,
        ))
        (decision,) = report.decisions
        assert not decision.accepted
        assert "stuck at" in decision.reason
        # beta was NOT evicted to make room, and alpha kept its old floor
        last = report.phases[-1]
        assert {row.chain_name for row in last.chains} == {"alpha", "beta"}
        assert last.t_mins["alpha"] == gbps(20)
        assert last.compliant

    def test_static_rejections(self):
        report = run(make_spec([
            ChainEvent(at=1, action="depart", chain="nope"),
            ChainEvent(at=2, action="arrive", chain="alpha",
                       spec="chain alpha: ACL -> IPv4Fwd",
                       t_min_mbps=100.0),
        ]))
        unknown, duplicate = report.decisions
        assert not unknown.accepted and "no active chain" in unknown.reason
        assert not duplicate.accepted and \
            "already active" in duplicate.reason

    def test_warm_incremental_solve_on_repeated_pattern(self):
        # gamma arrives, departs, then arrives again with the same SLO:
        # the second admission poses the identical warm-start problem and
        # is served from the placement cache.
        report = run(make_spec([
            GAMMA,
            ChainEvent(at=2, action="depart", chain="gamma"),
            ChainEvent(at=3, action="arrive", chain="gamma",
                       spec=GAMMA.spec, t_min_mbps=GAMMA.t_min_mbps,
                       t_max_mbps=GAMMA.t_max_mbps),
        ]))
        first, depart, second = report.decisions
        assert first.accepted and depart.accepted and second.accepted
        assert not first.cache_hit
        assert second.cache_hit

    def test_admission_counters(self):
        registry = MetricsRegistry()
        run_lifecycle(make_spec([
            GAMMA,
            ChainEvent(at=2, action="depart", chain="nope"),
        ]), registry=registry)
        assert registry.counter_value(
            "lifecycle.admission", decision="accepted", action="arrive"
        ) == 1
        assert registry.counter_value(
            "lifecycle.admission", decision="rejected", action="depart"
        ) == 1


class TestDeltaRedeploy:
    def test_identical_artifacts_reuse_every_device(self, simple_chains):
        from repro.core.placer import Placer, PlacementRequest
        from repro.metacompiler.compiler import MetaCompiler
        from repro.sim.runtime import DeployedRack

        placer = Placer()
        placement = placer.solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        meta = MetaCompiler(topology=placer.topology,
                            profiles=placer.profiles)
        rack = DeployedRack(placer.topology, meta.compile_placement(placement),
                            placer.profiles, registry=MetricsRegistry())
        result = rack.redeploy(meta.compile_placement(placement))
        assert result.rebuilt == [] and result.removed == []
        assert set(result.reused) == {
            placer.topology.switch.name, *rack.servers, *rack.nics
        }

    def test_redeploy_rebuilds_exactly_the_changed_fingerprints(
            self, simple_chains):
        from repro.chain.graph import chains_from_spec
        from repro.core.placer import Placer, PlacementRequest
        from repro.metacompiler.compiler import MetaCompiler
        from repro.sim.runtime import DeployedRack

        placer = Placer()
        base = placer.solve(PlacementRequest(chains=simple_chains))
        meta = MetaCompiler(topology=placer.topology,
                            profiles=placer.profiles)
        before = meta.compile_placement(base.placement)
        rack = DeployedRack(placer.topology, before, placer.profiles,
                            registry=MetricsRegistry())

        (gamma,) = chains_from_spec("chain gamma: Monitor -> IPv4Fwd")
        gamma = gamma.with_slo(SLO(t_min=gbps(0.5), t_max=gbps(30)))
        grown = placer.solve(PlacementRequest(
            chains=list(simple_chains) + [gamma],
            base_placement=base.placement,
        ))
        after = meta.compile_placement(grown.placement)

        switch = placer.topology.switch.name
        old_fp = before.device_fingerprints(switch)
        new_fp = after.device_fingerprints(switch)
        result = rack.redeploy(after)
        assert set(result.reused) == {
            d for d in new_fp if old_fp.get(d) == new_fp[d]
        }
        assert set(result.rebuilt) == {
            d for d in new_fp if old_fp.get(d) != new_fp[d]
        }
        assert set(result.removed) == set(old_fp) - set(new_fp)
        assert result.rebuilt  # the arrival changed at least one program

    def test_scale_that_changes_no_program_reuses_all_devices(self):
        # rescaling within the existing allocation regenerates identical
        # programs: the delta redeploy must touch nothing.
        report = run(make_spec([
            ChainEvent(at=1, action="scale", chain="beta",
                       t_min_mbps=gbps(2)),
        ]))
        (decision,) = report.decisions
        assert decision.accepted
        assert decision.rebuilt == ()
        assert decision.reused


class TestDeterminism:
    EVENTS = (
        GAMMA,
        ChainEvent(at=2, action="scale", chain="beta",
                   t_min_mbps=gbps(2)),
        ChainEvent(at=3, action="depart", chain="gamma"),
        ChainEvent(at=3, action="arrive", chain="delta",
                   spec="chain delta: ACL -> IPv4Fwd",
                   t_min_mbps=gbps(0.8), t_max_mbps=gbps(20)),
    )

    def test_repeated_runs_render_identically(self):
        a = run(make_spec(self.EVENTS)).render()
        b = run(make_spec(self.EVENTS)).render()
        assert a == b

    def test_jobs_replicas_agree(self):
        spec = make_spec(self.EVENTS)
        serial = run_lifecycle_checked(
            spec, jobs=1, registry=MetricsRegistry()
        ).render()
        checked = run_lifecycle_checked(
            spec, jobs=2, registry=MetricsRegistry()
        ).render()
        assert checked == serial

    def test_every_phase_of_the_e2e_scenario_meets_minimums(self):
        report = run(make_spec(self.EVENTS))
        assert all(d.accepted for d in report.decisions)
        for phase in report.phases:
            for row in phase.chains:
                t_min = phase.t_mins[row.chain_name]
                assert row.delivered_mbps >= t_min * (1 - 1e-9), (
                    f"{row.chain_name} under t_min in phase {phase.label}"
                )


class TestEngineValidation:
    def test_initial_chains_required(self):
        from repro.sim.lifecycle import LifecycleEngine

        with pytest.raises(LifecycleError, match="initial chain"):
            LifecycleEngine([], LifecycleTimeline())

    def test_cannot_depart_last_chain(self):
        spec = LifecycleSpec(
            spec_text="chain solo: ACL -> IPv4Fwd\n",
            slos=((gbps(1), gbps(40)),),
            timeline=LifecycleTimeline(events=(
                ChainEvent(at=1, action="depart", chain="solo"),
            )),
            packets_per_phase=16,
        )
        report = run(spec)
        (decision,) = report.decisions
        assert not decision.accepted
        assert "last active chain" in decision.reason

    def test_infeasible_initial_placement_raises(self):
        from repro.exceptions import PlacementError

        with pytest.raises(PlacementError, match="initial placement"):
            run(make_spec([], slos=((gbps(90), gbps(99)),
                                    (gbps(90), gbps(99)))))
