"""TrafficEngine: high-volume replay through the batched fast path."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.topology import default_testbed
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import TrafficEngine
from repro.units import gbps


def _deploy(spec, slos, **topo_kwargs):
    profiles = default_profiles()
    topology = default_testbed(**topo_kwargs)
    chains = chains_from_spec(spec, slos=slos)
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    registry = MetricsRegistry()
    rack = DeployedRack(topology, artifacts, profiles, registry=registry)
    return rack, placement, registry


def test_traffic_engine_reports_per_chain():
    rack, placement, registry = _deploy(
        "chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd",
        [SLO(t_min=gbps(1), t_max=gbps(20)),
         SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=8, batch_size=32)
    report = engine.run(packets_per_chain=128)

    assert [c.chain_name for c in report.chains] == ["a", "b"]
    for chain_report in report.chains:
        assert chain_report.injected == 128
        assert chain_report.delivered == 128
        assert chain_report.dropped == 0
        assert chain_report.flows == 8
        assert chain_report.achieved_pps > 0
        # LP assigned a rate, and full delivery sustains all of it
        assert chain_report.assigned_mbps > 0
        assert chain_report.delivered_mbps == pytest.approx(
            chain_report.assigned_mbps)
    assert report.injected == 256
    assert report.aggregate_assigned_mbps == pytest.approx(
        placement.aggregate_rate)

    # the registry saw exactly the injected volume
    injected = sum(
        c.value for c in registry.counters()
        if c.name == "rack.packets.injected"
    )
    assert injected == 256


def test_traffic_engine_exercises_flow_cache():
    rack, placement, registry = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    engine.run(packets_per_chain=64)
    misses = registry.counter_value("rack.flow_cache.lookups", result="miss")
    hits = registry.counter_value("rack.flow_cache.lookups", result="hit")
    assert misses == 4
    assert hits == 60


def test_traffic_engine_chain_filter():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd",
        [SLO(t_min=gbps(1), t_max=gbps(20)),
         SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    report = engine.run(packets_per_chain=32, chain_names=["b"])
    assert [c.chain_name for c in report.chains] == ["b"]


def test_traffic_engine_rejects_bad_config():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    with pytest.raises(ValueError):
        TrafficEngine(rack, placement, flows_per_chain=0)
    with pytest.raises(ValueError):
        TrafficEngine(rack, placement, batch_size=0)


def test_describe_renders_totals():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    report = engine.run(packets_per_chain=32)
    text = report.describe()
    assert "total" in text
    assert "a" in text.split()


def test_traffic_cli_smoke(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "one.lemur"
    spec.write_text("chain a: Encrypt -> IPv4Fwd\n")
    code = main([
        "traffic", str(spec), "--tmin", "1", "--tmax", "20",
        "--packets", "64", "--flows", "8", "--batch", "16",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "total" in out
    assert "64" in out
