"""TrafficEngine: high-volume replay through the batched fast path."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.hw.spec import TopologySpec
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack
from repro.sim.traffic import TrafficEngine
from repro.units import gbps


def _deploy(spec, slos, **topo_kwargs):
    profiles = default_profiles()
    topology = TopologySpec.from_flags(**topo_kwargs).build()
    chains = chains_from_spec(spec, slos=slos)
    placement = heuristic_place(chains, topology, profiles)
    assert placement.feasible, placement.infeasible_reason
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    registry = MetricsRegistry()
    rack = DeployedRack(topology, artifacts, profiles, registry=registry)
    return rack, placement, registry


def test_traffic_engine_reports_per_chain():
    rack, placement, registry = _deploy(
        "chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd",
        [SLO(t_min=gbps(1), t_max=gbps(20)),
         SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=8, batch_size=32)
    report = engine.run(packets_per_chain=128)

    assert [c.chain_name for c in report.chains] == ["a", "b"]
    for chain_report in report.chains:
        assert chain_report.injected == 128
        assert chain_report.delivered == 128
        assert chain_report.dropped == 0
        assert chain_report.flows == 8
        assert chain_report.achieved_pps > 0
        # LP assigned a rate, and full delivery sustains all of it
        assert chain_report.assigned_mbps > 0
        assert chain_report.delivered_mbps == pytest.approx(
            chain_report.assigned_mbps)
    assert report.injected == 256
    assert report.aggregate_assigned_mbps == pytest.approx(
        placement.aggregate_rate)

    # the registry saw exactly the injected volume
    injected = sum(
        c.value for c in registry.counters()
        if c.name == "rack.packets.injected"
    )
    assert injected == 256


def test_traffic_engine_exercises_flow_cache():
    rack, placement, registry = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    engine.run(packets_per_chain=64)
    misses = registry.counter_value("rack.flow_cache.lookups", result="miss")
    hits = registry.counter_value("rack.flow_cache.lookups", result="hit")
    assert misses == 4
    assert hits == 60


def test_traffic_engine_chain_filter():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd",
        [SLO(t_min=gbps(1), t_max=gbps(20)),
         SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    report = engine.run(packets_per_chain=32, chain_names=["b"])
    assert [c.chain_name for c in report.chains] == ["b"]


def test_traffic_engine_rejects_bad_config():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    with pytest.raises(ValueError):
        TrafficEngine(rack, placement, flows_per_chain=0)
    with pytest.raises(ValueError):
        TrafficEngine(rack, placement, batch_size=0)


def test_describe_renders_totals():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))],
    )
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    report = engine.run(packets_per_chain=32)
    text = report.describe()
    assert "total" in text
    assert "a" in text.split()


def _delivery_key(report):
    """The shard-count-invariant part of a report (walls and pps are not)."""
    return [
        (c.chain_name, c.flows, c.injected, c.delivered, c.dropped,
         c.assigned_mbps)
        for c in report.chains
    ]


def test_vectorized_matches_scalar():
    """``vectorized=True`` swaps in the columnar fast path; delivery
    outcomes and the whole metrics registry stay bit-identical."""
    spec = "chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd"
    slos = [SLO(t_min=gbps(1), t_max=gbps(20))] * 2
    rack_s, placement_s, reg_s = _deploy(spec, slos)
    rack_v, placement_v, reg_v = _deploy(spec, slos)
    scalar = TrafficEngine(rack_s, placement_s, flows_per_chain=8,
                           batch_size=32).run(packets_per_chain=128)
    vector = TrafficEngine(rack_v, placement_v, flows_per_chain=8,
                           batch_size=32, vectorized=True
                           ).run(packets_per_chain=128)
    assert _delivery_key(scalar) == _delivery_key(vector)
    assert reg_s.dump_state() == reg_v.dump_state()


def test_replay_batch_vectorized_matches_scalar():
    rack_s, placement_s, reg_s = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))])
    rack_v, placement_v, reg_v = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))])
    scalar = TrafficEngine(rack_s, placement_s, flows_per_chain=8,
                           batch_size=16)
    vector = TrafficEngine(rack_v, placement_v, flows_per_chain=8,
                           batch_size=16, vectorized=True)
    cursor_s = cursor_v = 0
    delivered_s = delivered_v = 0
    samples_s = []
    samples_v = []
    for count in (40, 24, 8):
        d, cursor_s, lat = scalar.replay_batch(placement_s.chains[0],
                                               cursor_s, count)
        delivered_s += d
        samples_s.extend(lat)
        d, cursor_v, lat = vector.replay_batch(placement_v.chains[0],
                                               cursor_v, count)
        delivered_v += d
        samples_v.extend(lat)
    assert (delivered_s, cursor_s) == (delivered_v, cursor_v)
    assert sorted(samples_s) == sorted(samples_v)
    assert len(samples_s) == delivered_s
    assert reg_s.dump_state() == reg_v.dump_state()


def test_flow_templates_synthesized_once():
    """Satellite fix: flow synthesis happens once per chain; replay cycles
    clones of the memoized templates and never mutates them."""
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))])
    engine = TrafficEngine(rack, placement, flows_per_chain=4, batch_size=16)
    cp = placement.chains[0]
    first = engine.synthesize_flows(cp)
    assert engine.synthesize_flows(cp) is first
    snapshot = [bytes(flow.data) for flow in first]
    engine.run(packets_per_chain=64)
    assert engine.synthesize_flows(cp) is first
    assert [bytes(flow.data) for flow in first] == snapshot


def test_achieved_pps_uses_run_wall_clock():
    """Satellite fix: the aggregate pps denominator is the whole-run wall,
    not the sum of per-chain walls (which overlap under shards)."""
    from repro.sim.traffic import ChainTrafficReport, TrafficReport

    chains = [
        ChainTrafficReport(chain_name=name, flows=4, injected=1000,
                           delivered=1000, dropped=0, wall_seconds=2.0,
                           assigned_mbps=100.0)
        for name in ("a", "b")
    ]
    report = TrafficReport(chains=chains, run_wall_seconds=2.5)
    # 2000 packets over 2.5s elapsed — NOT over the 4s summed walls
    assert report.achieved_pps == pytest.approx(2000 / 2.5)
    assert report.wall_seconds == pytest.approx(4.0)
    # without a recorded run wall (legacy construction) fall back to the sum
    legacy = TrafficReport(chains=chains)
    assert legacy.achieved_pps == pytest.approx(2000 / 4.0)


def test_chain_wall_excludes_packet_construction():
    """Per-chain walls time rack work only; they never exceed the whole
    run's elapsed time."""
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))])
    engine = TrafficEngine(rack, placement, flows_per_chain=8, batch_size=32)
    report = engine.run(packets_per_chain=256)
    assert report.run_wall_seconds > 0
    assert report.wall_seconds <= report.run_wall_seconds


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_run_is_delivery_invariant(shards):
    """Satellite: the same report (delivery fields) at --shards 1/2/4."""
    spec = ("chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd\n"
            "chain c: NAT -> IPv4Fwd\nchain d: BPF -> IPv4Fwd")
    slos = [SLO(t_min=gbps(1), t_max=gbps(20))] * 4

    rack_1, placement_1, _ = _deploy(spec, slos)
    serial = TrafficEngine(rack_1, placement_1, flows_per_chain=8,
                           batch_size=32, vectorized=True
                           ).run(packets_per_chain=128)

    rack_n, placement_n, reg_n = _deploy(spec, slos)
    sharded = TrafficEngine(rack_n, placement_n, flows_per_chain=8,
                            batch_size=32, vectorized=True, shards=shards
                            ).run(packets_per_chain=128)

    assert _delivery_key(serial) == _delivery_key(sharded)
    assert len(sharded.shard_walls) == min(shards, 4)
    assert sharded.run_wall_seconds > 0
    # per-worker metrics merged back into the parent registry
    injected = sum(
        c.value for c in reg_n.counters()
        if c.name == "rack.packets.injected"
    )
    assert injected == 4 * 128
    assert "shards:" in sharded.describe()


def test_sharded_engine_rejects_bad_config():
    rack, placement, _ = _deploy(
        "chain a: Encrypt -> IPv4Fwd", [SLO(t_min=gbps(1), t_max=gbps(20))])
    with pytest.raises(ValueError):
        TrafficEngine(rack, placement, shards=0)


def test_traffic_cli_smoke(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "one.lemur"
    spec.write_text("chain a: Encrypt -> IPv4Fwd\n")
    code = main([
        "traffic", str(spec), "--tmin", "1", "--tmax", "20",
        "--packets", "64", "--flows", "8", "--batch", "16",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "total" in out
    assert "64" in out


def test_traffic_cli_vectorized_sharded(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "two.lemur"
    spec.write_text("chain a: Encrypt -> IPv4Fwd\nchain b: ACL -> IPv4Fwd\n")
    code = main([
        "traffic", str(spec), "--tmin", "1", "--tmax", "20",
        "--packets", "64", "--flows", "8", "--batch", "16",
        "--vectorized", "--shards", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "total" in out
    assert "shards: 2" in out
