"""Dataplane observability: per-device cycle attribution, per-hop latency
breakdown, classification indexing, and rack counters."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.placer import Placer, PlacementRequest
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.obs import MetricsRegistry
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack, _chain_packet
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def deploy(spec, profiles, topology=None, slos=None):
    topology = topology or topology_for("paper-testbed").build()
    chains = chains_from_spec(
        spec, slos=slos or [SLO(t_min=gbps(1), t_max=gbps(20))]
    )
    placer = Placer(topology=topology, profiles=profiles)
    placement = placer.solve(PlacementRequest(chains=chains)).placement
    assert placement.feasible
    meta = MetaCompiler(topology=topology, profiles=profiles)
    artifacts = meta.compile_placement(placement)
    registry = MetricsRegistry()
    rack = DeployedRack(topology, artifacts, profiles, registry=registry)
    return rack, placement, registry


def heterogeneous_nic_testbed(server_freq_hz=2.0e9):
    """SmartNIC testbed with the server clocked unlike both the paper's
    1.7 GHz reference and the NIC's 1.2 GHz."""
    topology = topology_for("paper-smartnic").build()
    for socket in topology.servers[0].sockets:
        socket.freq_hz = server_freq_hz
    return topology


class TestPerDeviceLatencyAttribution:
    """The ISSUE's acceptance test: the exec component of ``latency_us``
    must equal Σ over devices of cycles-on-device ÷ that device's own
    ``freq_hz`` — not the total converted with ``servers[0].freq_hz``."""

    def _mixed_hop_packet(self, profiles):
        topology = heterogeneous_nic_testbed()
        rack, placement, _registry = deploy(
            "chain c: Dedup -> FastEncrypt -> IPv4Fwd", profiles,
            topology=topology,
        )
        cp = placement.chains[0]
        assignment_platforms = {
            a.platform for a in cp.assignment.values()
        }
        assert Platform.SMARTNIC in assignment_platforms
        assert Platform.SERVER in assignment_platforms
        out = rack.inject(cp, _chain_packet(cp.chain, 0))
        assert out is not None
        return rack, out

    def test_exec_us_sums_per_device_cycles_over_own_clock(self, profiles):
        rack, out = self._mixed_hop_packet(profiles)
        meta = out.metadata
        # both clock domains actually charged cycles
        assert meta.cycles_by_device["server0"] > 0
        assert meta.cycles_by_device["agilio0"] > 0
        expected = sum(
            cycles / rack.device_freq(device) * 1e6
            for device, cycles in meta.cycles_by_device.items()
        )
        assert meta.fields["exec_us"] == pytest.approx(expected)
        # every charged cycle is attributed to some device
        assert sum(meta.cycles_by_device.values()) == meta.cycles_consumed

    def test_single_clock_conversion_would_be_wrong(self, profiles):
        """Regression guard for the old bug: converting the *total* with
        the first server's clock misprices the SmartNIC's 1.2 GHz cycles
        when the server runs at a different frequency."""
        rack, out = self._mixed_hop_packet(profiles)
        meta = out.metadata
        single_clock = (
            meta.cycles_consumed / rack.topology.servers[0].freq_hz * 1e6
        )
        assert meta.fields["exec_us"] != pytest.approx(single_clock, rel=1e-3)

    def test_latency_is_sum_of_components(self, profiles):
        rack, out = self._mixed_hop_packet(profiles)
        fields = out.metadata.fields
        assert fields["latency_us"] == pytest.approx(
            fields["exec_us"] + fields["bounce_us"] + fields["switch_us"]
        )

    def test_hop_records_cover_all_cycles(self, profiles):
        rack, out = self._mixed_hop_packet(profiles)
        meta = out.metadata
        hops = meta.fields["hops"]
        assert sum(h["cycles"] for h in hops) == meta.cycles_consumed
        assert sum(h["exec_us"] for h in hops) == pytest.approx(
            meta.fields["exec_us"]
        )
        # switch hops run at line rate and charge nothing
        for hop in hops:
            if hop["platform"] == Platform.PISA.value:
                assert hop["cycles"] == 0


class TestClassifyIndex:
    def test_index_matches_linear_scan(self, profiles):
        """The dict index keyed by (chain, node-id route) must pick the
        same service path the old O(paths × packets) scan did."""
        rack, placement, _registry = deploy(
            "chain branchy: BPF -> "
            "[ACL -> Encrypt @ 0.5, default: Monitor] -> IPv4Fwd\n"
            "chain plain: ACL -> Encrypt -> IPv4Fwd",
            profiles,
            slos=[SLO(t_min=gbps(1), t_max=gbps(20)),
                  SLO(t_min=gbps(1), t_max=gbps(20))],
        )
        checked = 0
        for cp in placement.chains:
            for index in range(16):
                packet = _chain_packet(cp.chain, index)
                path = rack.classify(cp, packet)
                matches = [
                    p for p in rack.artifacts.routing.service_paths
                    if p.chain_name == cp.name
                    and tuple(p.node_ids) == tuple(path.node_ids)
                ]
                assert matches == [path]
                checked += 1
        assert checked == 32

    def test_branch_arms_reach_distinct_paths(self, profiles):
        rack, placement, _registry = deploy(
            "chain branchy: BPF -> "
            "[ACL -> Encrypt @ 0.5, default: Monitor] -> IPv4Fwd",
            profiles,
        )
        cp = placement.chains[0]
        spis = {
            rack.classify(cp, _chain_packet(cp.chain, index)).spi
            for index in range(32)
        }
        assert len(spis) == 2


class TestRackCounters:
    def test_injected_splits_into_delivered_and_dropped(self, profiles):
        rack, placement, registry = deploy(
            "chain c: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        traces = rack.trace_chains(placement, packets_per_chain=8)
        injected = registry.counter_value("rack.packets.injected", chain="c")
        delivered = registry.counter_value("rack.packets.delivered", chain="c")
        assert injected == 8
        assert delivered == traces["c"].delivered
        dropped = sum(
            c.value for c in registry.counters()
            if c.name == "rack.packets.dropped"
        )
        assert delivered + dropped == injected

    def test_device_cycle_counter_matches_nic_bookkeeping(self, profiles):
        topology = topology_for("paper-smartnic").build()
        rack, placement, registry = deploy(
            "chain c: BPF -> FastEncrypt -> IPv4Fwd", profiles,
            topology=topology, slos=[SLO(t_min=gbps(1), t_max=gbps(39))],
        )
        rack.trace_chains(placement, packets_per_chain=8)
        nic_cycles = registry.counter_value(
            "rack.device.cycles", device="agilio0"
        )
        assert nic_cycles > 0
        assert nic_cycles == rack.nics["agilio0"].cycles_charged

    def test_latency_histogram_and_trace_agree(self, profiles):
        rack, placement, registry = deploy(
            "chain c: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        traces = rack.trace_chains(placement, packets_per_chain=8)
        hist = registry.histogram("rack.latency_us", chain="c")
        assert hist.count == traces["c"].delivered
        assert hist.mean == pytest.approx(traces["c"].avg_latency_us)

    def test_device_stats_reports_registry_counters(self, profiles):
        rack, placement, _registry = deploy(
            "chain c: ACL -> Encrypt -> IPv4Fwd", profiles
        )
        rack.trace_chains(placement, packets_per_chain=4)
        stats = rack.device_stats()
        assert stats["server0"]["packets_in"] == 4
        assert stats["server0"]["packets_out"] == 4
        assert stats["server0"]["cycles"] > 0
        assert "modules" in stats["server0"]
        assert stats["tofino0"]["packets_in"] > 0


class TestTraceBreakdown:
    def test_trace_reports_breakdown_and_hops(self, profiles):
        topology = heterogeneous_nic_testbed()
        rack, placement, _registry = deploy(
            "chain c: Dedup -> FastEncrypt -> IPv4Fwd", profiles,
            topology=topology,
        )
        traces = rack.trace_chains(placement, packets_per_chain=8)
        trace = traces["c"]
        assert trace.delivered == 8
        assert trace.avg_latency_us == pytest.approx(
            sum(trace.latency_breakdown.values())
        )
        assert trace.latency_breakdown["bounce_us"] > 0
        devices = {hop.device for hop in trace.hops}
        assert {"server0", "agilio0"} <= devices
        nic_hops = [h for h in trace.hops if h.device == "agilio0"]
        assert all(h.avg_exec_us > 0 for h in nic_hops)
