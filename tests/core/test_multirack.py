"""Hierarchical multi-rack placement: partition + per-rack solves + links."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.hierarchy import MultiRackPlacer
from repro.core.placer import (
    MultiRackOptions,
    Placer,
    PlacementRequest,
)
from repro.exceptions import PlacementError
from repro.hw.spec import InterRackLinkSpec, RackSpec, TopologySpec, topology_for
from repro.profiles.defaults import default_profiles


def _chains(n, t_min=4000.0, t_max=9000.0, d_max=400.0):
    spec = "\n".join(
        f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd" for i in range(n)
    )
    slos = [SLO(t_min=t_min, t_max=t_max, d_max=d_max) for _ in range(n)]
    return chains_from_spec(spec, slos=slos)


@pytest.fixture()
def profiles():
    return default_profiles()


class TestHierarchicalSolve:
    def test_infeasible_on_one_rack_admitted_on_two(self, profiles):
        """The headline scenario: a chain set one rack cannot hold is
        admitted by the fabric, with the overflow homed remotely."""
        chains = _chains(8)
        single = Placer(topology=topology_for("paper-testbed").build(),
                        profiles=profiles)
        flat = single.solve(PlacementRequest(chains=chains)).placement
        assert not flat.feasible

        placer = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        )
        report = placer.solve(PlacementRequest.multi_rack(chains=chains))
        placement = report.placement
        assert placement.feasible, placement.infeasible_reason
        assert set(placement.partition.assignment.values()) == {"r0", "r1"}
        assert placement.remote  # at least one chain pays the fabric RTT
        for chain in placement.remote:
            assert placement.rtt_of(chain) == 100.0
            assert placement.rack_of(chain) == "r1"
        # every chain got a rate meeting its floor
        for chain in chains:
            assert placement.rate_of(chain.name) >= chain.slo.t_min - 1e-6
        assert report.mode == "hierarchical"
        assert report.rack_solve == "serial"
        assert report.seconds > 0

    def test_remote_chains_hand_down_shrunk_d_max(self, profiles):
        """Rack cores must guard d_max minus the fabric RTT, so the
        end-to-end bound still holds once the RTT is stamped."""
        placer = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        )
        placement = placer.solve(
            PlacementRequest.multi_rack(chains=_chains(6))
        ).placement
        assert placement.feasible
        for cp in placement.placement_for("r1").chains:
            if cp.name in placement.remote:
                assert cp.chain.slo.d_max == pytest.approx(400.0 - 100.0)

    def test_partition_error_becomes_infeasible_report(self, profiles):
        placer = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        )
        report = placer.solve(
            PlacementRequest.multi_rack(chains=_chains(12))
        )
        assert not report.placement.feasible
        assert "cores exhausted" in report.placement.infeasible_reason

    def test_warm_start_and_failures_rejected(self, profiles):
        placer = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        )
        chains = _chains(2)
        base = Placer(profiles=profiles).solve(
            PlacementRequest(chains=chains)
        ).placement
        with pytest.raises(PlacementError, match="base_placement"):
            placer.solve(PlacementRequest(chains=chains,
                                          base_placement=base))
        with pytest.raises(PlacementError, match="failed_devices"):
            placer.solve(PlacementRequest(chains=chains,
                                          failed_devices=("r0.server0",)))

    def test_rack_pins_keep_homes(self, profiles):
        placer = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        )
        placement = placer.solve(PlacementRequest.multi_rack(
            chains=_chains(2), rack_pins={"c1": "r1"},
        )).placement
        assert placement.feasible
        assert placement.rack_of("c0") == "r0"
        assert placement.rack_of("c1") == "r1"


class TestLinkCapacityPostPass:
    def test_overloaded_link_sheds_marginal_rate(self, profiles):
        """A pinned remote chain whose LP rate exceeds the link is shed
        down to the link capacity — never below its t_min floor."""
        fabric = TopologySpec(
            racks=(RackSpec(name="r0"), RackSpec(name="r1")),
            links=(InterRackLinkSpec(a="r0", b="r1",
                                     capacity_mbps=5000.0),),
        ).build()
        placer = MultiRackPlacer(fabric=fabric, profiles=profiles)
        placement = placer.solve(PlacementRequest.multi_rack(
            chains=_chains(1, t_min=4000.0, t_max=9000.0),
            rack_pins={"c0": "r1"},
        )).placement
        assert placement.feasible
        assert placement.rates["c0"] == pytest.approx(5000.0)
        assert placement.link_shed_mbps["r0~r1"] > 0
        # the per-rack placement was patched to agree
        assert placement.placement_for("r1").rates["c0"] == \
            pytest.approx(5000.0)

    def test_floors_over_link_capacity_infeasible(self, profiles):
        fabric = TopologySpec(
            racks=(RackSpec(name="r0"), RackSpec(name="r1")),
            links=(InterRackLinkSpec(a="r0", b="r1",
                                     capacity_mbps=5000.0),),
        ).build()
        placer = MultiRackPlacer(fabric=fabric, profiles=profiles)
        report = placer.solve(PlacementRequest.multi_rack(
            chains=_chains(2, t_min=4000.0),
            rack_pins={"c0": "r1", "c1": "r1"},
        ))
        assert not report.placement.feasible
        assert "capacity exhausted" in report.placement.infeasible_reason


class TestPoolEquivalence:
    def test_pool_solves_byte_identical_to_serial(self, profiles):
        """Acceptance invariant: fanning per-rack solves over the worker
        pool changes wall clock, never results."""
        chains = _chains(6)
        serial = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        ).solve(PlacementRequest.multi_rack(chains=chains, jobs=1))
        pooled = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        ).solve(PlacementRequest.multi_rack(chains=chains, jobs=4))

        assert serial.rack_solve == "serial"
        assert pooled.rack_solve == "pool"
        a, b = serial.placement, pooled.placement
        assert a.feasible and b.feasible
        assert a.partition.assignment == b.partition.assignment
        assert a.rates == b.rates
        assert a.link_shed_mbps == b.link_shed_mbps
        assert a.describe() == b.describe()
        for rack in a.reports:
            assert a.placement_for(rack).describe() == \
                b.placement_for(rack).describe()

    def test_repeat_solve_hits_per_rack_cache(self, profiles):
        placer = MultiRackPlacer(
            fabric=topology_for("two-rack").build(), profiles=profiles,
        )
        chains = _chains(6)
        first = placer.solve(PlacementRequest.multi_rack(chains=chains))
        again = placer.solve(PlacementRequest.multi_rack(chains=chains))
        assert first.placement.describe() == again.placement.describe()
        assert all(r.cache_hit for r in again.placement.reports.values())


class TestRequestSurface:
    def test_multi_rack_constructor_builds_options(self):
        request = PlacementRequest.multi_rack(
            chains=_chains(1), jobs=3, rack_pins={"c0": "r1"},
            ingress="r0",
        )
        assert isinstance(request.multi_rack, MultiRackOptions)
        assert request.multi_rack.jobs == 3
        assert request.multi_rack.pins() == {"c0": "r1"}
        assert request.multi_rack.ingress == "r0"

    def test_single_rack_placer_rejects_fabric_request(self):
        request = PlacementRequest.multi_rack(chains=_chains(1))
        with pytest.raises(PlacementError, match="MultiRackPlacer"):
            Placer().solve(request)
