"""Rate estimation and LP tests."""

import math

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.lp import nic_headroom, solve_rates
from repro.core.placement import NodeAssignment, Subgroup
from repro.core.rates import (
    analyze_chain,
    estimate_chain_rate,
    subgroup_rate_mbps,
)
from repro.core.subgroups import form_subgroups
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.profiles.defaults import (
    DEMUX_LB_CYCLES,
    default_profiles,
)
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


@pytest.fixture()
def topo():
    return topology_for("paper-testbed").build()


def make_cp(spec, slo, profiles, topo, server_nfs):
    chain = chains_from_spec(spec, slos=[slo])[0]
    assignment = {}
    for nid, node in chain.graph.nodes.items():
        if node.nf_class in server_nfs:
            assignment[nid] = NodeAssignment(Platform.SERVER, "server0")
        else:
            assignment[nid] = NodeAssignment(Platform.PISA, "tofino0")
    subgroups = form_subgroups(chain, assignment, profiles)
    return analyze_chain(chain, assignment, subgroups, topo, profiles)


class TestSubgroupRate:
    def test_single_core_rate(self):
        sg = Subgroup(sg_id="s", chain_name="c", server="server0",
                      node_ids=("n",), cycles=17000, replicable=True)
        rate = subgroup_rate_mbps(sg, freq_hz=1.7e9, packet_bits=12000)
        assert rate == pytest.approx(1.7e9 / 17000 * 12000 / 1e6)

    def test_replication_scales_with_demux_penalty(self):
        sg1 = Subgroup("s", "c", "server0", ("n",), 17000, True, cores=1)
        sg2 = Subgroup("s", "c", "server0", ("n",), 17000, True, cores=2)
        r1 = subgroup_rate_mbps(sg1, 1.7e9)
        r2 = subgroup_rate_mbps(sg2, 1.7e9)
        assert r1 < r2 < 2 * r1  # demux LB cycles shave a bit off 2x
        expected = 2 * 1.7e9 / (17000 + DEMUX_LB_CYCLES) * 12000 / 1e6
        assert r2 == pytest.approx(expected)


class TestAnalyzeChain:
    def test_bounce_counting(self, profiles, topo):
        cp = make_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                     SLO(t_min=100), profiles, topo, {"Encrypt"})
        assert cp.bounces == 1
        cp2 = make_cp("chain c: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                      SLO(t_min=100), profiles, topo, {"Encrypt", "Dedup"})
        assert cp2.bounces == 2

    def test_server_visits_match_bounces(self, profiles, topo):
        cp = make_cp("chain c: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                     SLO(t_min=100), profiles, topo, {"Encrypt", "Dedup"})
        assert cp.server_visits["server0"] == pytest.approx(2.0)

    def test_branch_visits_weighted(self, profiles, topo):
        cp = make_cp("chain c: BPF -> [Encrypt, pass] -> IPv4Fwd",
                     SLO(t_min=100), profiles, topo, {"Encrypt"})
        assert cp.server_visits["server0"] == pytest.approx(0.5)

    def test_estimated_rate_is_min_subgroup(self, profiles, topo):
        cp = make_cp("chain c: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                     SLO(t_min=100), profiles, topo, {"Encrypt", "Dedup"})
        rates = [subgroup_rate_mbps(sg, 1.7e9) for sg in cp.subgroups]
        assert cp.estimated_rate == pytest.approx(min(rates))

    def test_all_switch_chain_line_rate(self, profiles, topo):
        cp = make_cp("chain c: ACL -> NAT -> IPv4Fwd",
                     SLO(t_min=100), profiles, topo, set())
        assert cp.estimated_rate == pytest.approx(gbps(100))
        assert cp.bounces == 0
        assert cp.latency_us < 5.0

    def test_latency_grows_with_bounces(self, profiles, topo):
        one = make_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=100), profiles, topo, {"Encrypt"})
        two = make_cp("chain c: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                      SLO(t_min=100), profiles, topo, {"Encrypt", "Dedup"})
        assert two.latency_us > one.latency_us


class TestLP:
    def _cp(self, spec, slo, profiles, topo, server_nfs):
        return make_cp(spec, slo, profiles, topo, server_nfs)

    def test_maximizes_marginal(self, profiles, topo):
        cp = self._cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=1000, t_max=gbps(100)), profiles, topo,
                      {"Encrypt"})
        solution = solve_rates([cp], topo)
        assert solution.feasible
        # single chain: rate = estimated rate (below NIC cap)
        assert solution.rates["c"] == pytest.approx(cp.estimated_rate)
        assert solution.objective_mbps == pytest.approx(
            cp.estimated_rate - 1000
        )

    def test_tmax_caps_rate(self, profiles, topo):
        cp = self._cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=100, t_max=1500), profiles, topo,
                      {"Encrypt"})
        cp.estimated_rate = 5000
        solution = solve_rates([cp], topo)
        assert solution.rates["c"] == pytest.approx(1500)

    def test_infeasible_when_estimate_below_tmin(self, profiles, topo):
        cp = self._cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=gbps(50)), profiles, topo, {"Encrypt"})
        solution = solve_rates([cp], topo)
        assert not solution.feasible
        assert "t_min" in solution.reason

    def test_nic_capacity_shared(self, profiles, topo):
        cps = []
        for name in ("a", "b"):
            cp = self._cp(f"chain {name}: ACL -> Encrypt -> IPv4Fwd",
                          SLO(t_min=1000, t_max=gbps(100)), profiles, topo,
                          {"Encrypt"})
            cp.estimated_rate = gbps(50)  # pretend many cores
            cps.append(cp)
        solution = solve_rates(cps, topo)
        assert solution.feasible
        total = sum(solution.rates.values())
        assert total == pytest.approx(gbps(40))  # 40G NIC, 1 visit each

    def test_bounces_charge_nic_twice(self, profiles, topo):
        cp = self._cp("chain c: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                      SLO(t_min=100, t_max=gbps(100)), profiles, topo,
                      {"Encrypt", "Dedup"})
        cp.estimated_rate = gbps(50)
        solution = solve_rates([cp], topo)
        assert solution.rates["c"] == pytest.approx(gbps(20))  # 40G / 2

    def test_headroom_reporting(self, profiles, topo):
        cp = self._cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=100, t_max=gbps(100)), profiles, topo,
                      {"Encrypt"})
        solution = solve_rates([cp], topo)
        headroom = nic_headroom([cp], solution.rates, topo)
        assert headroom["server0"] == pytest.approx(
            gbps(40) - solution.rates["c"]
        )

    def test_empty_input(self, topo):
        assert solve_rates([], topo).feasible
