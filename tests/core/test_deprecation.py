"""The legacy Placer wrappers are gone: solve is the only entry point."""

import pytest

from repro.core import placer as placer_module
from repro.core.placer import Placer, PlacementRequest

REMOVED = ("place", "place_timed", "place_with_reserve",
           "replan_after_failure")


class TestWrappersRemoved:
    @pytest.mark.parametrize("name", REMOVED)
    def test_old_entry_points_are_gone(self, name):
        assert not hasattr(Placer, name), (
            f"Placer.{name} was removed in the solve() migration and must "
            "not come back"
        )

    def test_deprecation_machinery_is_gone(self):
        for leftover in ("_WARNED", "_deprecated",
                         "_reset_deprecation_warnings"):
            assert not hasattr(placer_module, leftover)

    def test_solve_stays_warning_free(self, simple_chains):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = Placer().solve(PlacementRequest(chains=simple_chains))
        assert report.placement.feasible
