"""Legacy Placer wrappers: each warns exactly once; solve never warns."""

import warnings

import pytest

from repro.core.placer import (
    Placer,
    PlacementRequest,
    _reset_deprecation_warnings,
)
from repro.hw.topology import default_testbed


@pytest.fixture(autouse=True)
def rearm_warn_once():
    """The warn-once latch is process-global; re-arm it per test."""
    _reset_deprecation_warnings()
    yield
    _reset_deprecation_warnings()


def _deprecation_count(caught):
    return sum(
        1 for w in caught if issubclass(w.category, DeprecationWarning)
    )


class TestWarnOnce:
    def test_each_wrapper_warns_exactly_once(self, simple_chains):
        placer = Placer(topology=default_testbed(with_smartnic=True))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            placer.place(simple_chains)
            placer.place(simple_chains)
            placer.place(simple_chains)
        assert _deprecation_count(caught) == 1

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            placer.place_timed(simple_chains)
            placer.place_timed(simple_chains)
        assert _deprecation_count(caught) == 1

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            placer.replan_after_failure(simple_chains, "agilio0")
            placer.replan_after_failure(simple_chains, "agilio0")
        assert _deprecation_count(caught) == 1

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            placer.place_with_reserve(simple_chains, reserve_cores=1)
            placer.place_with_reserve(simple_chains, reserve_cores=1)
        assert _deprecation_count(caught) == 1

    def test_wrappers_warn_independently(self, simple_chains):
        """One wrapper's warning does not consume another's."""
        placer = Placer()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            placer.place(simple_chains)
            placer.place_timed(simple_chains)
        assert _deprecation_count(caught) == 2

    def test_warning_names_the_replacement(self, simple_chains):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Placer().place(simple_chains)
        (warning,) = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert "Placer.place is deprecated" in str(warning.message)
        assert "solve(PlacementRequest" in str(warning.message)

    def test_solve_stays_warning_free(self, simple_chains):
        placer = Placer()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            report = placer.solve(PlacementRequest(chains=simple_chains))
        assert report.placement.feasible
        assert _deprecation_count(caught) == 0
