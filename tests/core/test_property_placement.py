"""Property-based tests over the Placer's core invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.core.lp import solve_rates
from repro.core.placement import NodeAssignment
from repro.core.rates import analyze_chain, estimate_chain_rate
from repro.core.subgroups import form_subgroups
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps

PROFILES = default_profiles()

#: server-capable NFs with distinct cost profiles
SERVER_NFS = ["Encrypt", "Dedup", "Monitor", "UrlFilter", "BPF", "ACL"]


@st.composite
def linear_chain_spec(draw):
    """A random linear chain of 2-5 server-capable NFs ending in IPv4Fwd."""
    length = draw(st.integers(2, 5))
    nfs = [draw(st.sampled_from(SERVER_NFS)) for _ in range(length)]
    return " -> ".join(nfs) + " -> IPv4Fwd"


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=linear_chain_spec(),
       tmin_gbps=st.floats(0.0, 2.0),
       delta_gbps=st.floats(0.1, 20.0))
def test_lp_rate_within_bounds(spec, tmin_gbps, delta_gbps):
    """LP rates always honor t_min <= r <= min(t_max, estimate)."""
    topo = topology_for("paper-testbed").build()
    slo = SLO(t_min=gbps(tmin_gbps), t_max=gbps(tmin_gbps + delta_gbps))
    chains = chains_from_spec(f"chain p: {spec}", slos=[slo])
    placement = heuristic_place(chains, topo, PROFILES)
    if not placement.feasible:
        return  # infeasibility is legitimate for expensive draws
    rate = placement.rates["p"]
    cp = placement.chains[0]
    assert rate >= slo.t_min - 1e-6
    assert rate <= min(slo.t_max, cp.estimated_rate) + 1e-6


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=linear_chain_spec())
def test_subgroups_partition_server_nodes(spec):
    """Subgroups exactly partition the server-placed NFs."""
    topo = topology_for("paper-testbed").build()
    chains = chains_from_spec(f"chain p: {spec}")
    chain = chains[0]
    assignment = {}
    for i, nid in enumerate(chain.graph.topological_order()):
        node = chain.graph.nodes[nid]
        if Platform.SERVER in node.info.platforms and i % 2 == 0:
            assignment[nid] = NodeAssignment(Platform.SERVER, "server0")
        elif Platform.PISA in node.info.platforms:
            assignment[nid] = NodeAssignment(Platform.PISA, "tofino0")
        else:
            assignment[nid] = NodeAssignment(Platform.SERVER, "server0")
    subgroups = form_subgroups(chain, assignment, PROFILES)
    server_nodes = {
        nid for nid, a in assignment.items()
        if a.platform is Platform.SERVER
    }
    covered = [nid for sg in subgroups for nid in sg.node_ids]
    assert sorted(covered) == sorted(server_nodes)  # no dup, no miss


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=linear_chain_spec(), cores=st.integers(1, 6))
def test_estimate_monotone_in_cores(spec, cores):
    """Adding cores to a replicable subgroup never lowers the estimate."""
    topo = topology_for("paper-testbed").build()
    chain = chains_from_spec(f"chain p: {spec}")[0]
    assignment = {
        nid: (NodeAssignment(Platform.SERVER, "server0")
              if Platform.SERVER in chain.graph.nodes[nid].info.platforms
              else NodeAssignment(Platform.PISA, "tofino0"))
        for nid in chain.graph.nodes
    }
    subgroups = form_subgroups(chain, assignment, PROFILES)
    cp = analyze_chain(chain, assignment, subgroups, topo, PROFILES)
    baseline = estimate_chain_rate(cp, topo)
    for sg in cp.subgroups:
        if sg.replicable:
            sg.cores = cores
    scaled = estimate_chain_rate(cp, topo)
    if cores >= 2:
        assert scaled >= baseline - 1e-9
    else:
        assert scaled == baseline


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tmins=st.lists(st.floats(0.1, 3.0), min_size=2, max_size=3))
def test_lp_objective_equals_sum_of_marginals(tmins):
    """The LP objective is exactly Σ(r_i − t_min_i)."""
    topo = topology_for("paper-testbed").build()
    spec = "\n".join(
        f"chain c{i}: ACL -> Encrypt -> IPv4Fwd" for i in range(len(tmins))
    )
    slos = [SLO(t_min=gbps(t), t_max=gbps(40)) for t in tmins]
    chains = chains_from_spec(spec, slos=slos)
    placement = heuristic_place(chains, topo, PROFILES)
    if not placement.feasible:
        return
    marginals = sum(
        placement.rates[cp.name] - cp.chain.slo.t_min
        for cp in placement.chains
    )
    assert abs(placement.objective_mbps - marginals) < 1e-6
