"""Top-level Placer API, brute force, MILP, ablations, and extensions."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.ablations import no_core_allocation_place, no_profiling_place
from repro.core.bruteforce import brute_force_place
from repro.core.milp import milp_place
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementRequest,
    available_strategies,
)
from repro.exceptions import PlacementError
from repro.experiments.chains import chains_with_delta
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


class TestPlacerAPI:
    def test_default_strategy_is_lemur(self, simple_chains):
        placer = Placer()
        placement = placer.solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        assert placement.feasible
        assert placement.strategy == "lemur"

    def test_all_strategies_run(self, simple_chains):
        placer = Placer()
        for strategy in available_strategies():
            placement = placer.solve(PlacementRequest(
                chains=simple_chains, strategy=strategy,
            )).placement
            assert placement is not None

    def test_unknown_strategy_raises(self, simple_chains):
        with pytest.raises(PlacementError):
            Placer().solve(PlacementRequest(
                chains=simple_chains, strategy="quantum",
            ))

    def test_solve_reports_wall_clock(self, simple_chains):
        report = Placer().solve(PlacementRequest(chains=simple_chains))
        assert report.placement.feasible
        assert report.seconds > 0

    def test_describe_readable(self, simple_chains):
        placement = Placer().solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        text = placement.describe()
        assert "alpha" in text and "beta" in text
        assert "pisa" in text


class TestRequestValidation:
    """PlacementRequest flag combinations are validated at construction."""

    def test_negative_reserve_cores_rejected(self, simple_chains):
        with pytest.raises(PlacementError, match="non-negative"):
            PlacementRequest(chains=simple_chains, reserve_cores=-1)

    def test_unknown_objective_rejected(self, simple_chains):
        with pytest.raises(PlacementError, match="objective"):
            PlacementRequest(chains=simple_chains, objective="vibes")

    def test_unknown_strategy_rejected_at_construction(self, simple_chains):
        with pytest.raises(PlacementError, match="unknown strategy"):
            PlacementRequest(chains=simple_chains, strategy="quantum")

    def test_warm_start_excludes_failed_devices(self, simple_chains):
        base = Placer().solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        with pytest.raises(PlacementError, match="mutually"):
            PlacementRequest(chains=simple_chains, base_placement=base,
                             failed_devices=("server0",))

    def test_warm_start_excludes_reserve_cores(self, simple_chains):
        base = Placer().solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        with pytest.raises(PlacementError, match="mutually"):
            PlacementRequest(chains=simple_chains, base_placement=base,
                             reserve_cores=2)

    def test_infeasible_base_rejected(self, simple_chains):
        from repro.core.placement import Placement
        dead = Placement(chains=[], feasible=False,
                         infeasible_reason="nope")
        with pytest.raises(PlacementError, match="feasible"):
            PlacementRequest(chains=simple_chains, base_placement=dead)

    def test_multi_rack_jobs_must_be_positive(self, simple_chains):
        with pytest.raises(PlacementError, match="jobs"):
            PlacementRequest.multi_rack(chains=simple_chains, jobs=0)

    def test_multi_rack_constructor_sorts_pins(self, simple_chains):
        request = PlacementRequest.multi_rack(
            chains=simple_chains, jobs=2,
            rack_pins={"beta": "r1", "alpha": "r0"},
        )
        assert request.multi_rack.rack_pins == \
            (("alpha", "r0"), ("beta", "r1"))
        assert request.multi_rack.pins() == {"alpha": "r0", "beta": "r1"}


class TestBruteForce:
    def test_never_below_heuristic(self, profiles):
        from repro.core.heuristic import heuristic_place
        for delta in (0.5, 1.5):
            chains = chains_with_delta([2, 3], delta=delta)
            optimal = brute_force_place(chains, topology_for("paper-testbed").build(), profiles)
            lemur = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
            if lemur.feasible:
                assert optimal.feasible
                assert optimal.objective_mbps >= lemur.objective_mbps - 1e-6

    def test_respects_stage_budget(self, profiles):
        from repro.experiments.chains import nat_stress_chain, base_rate_mbps
        chain = nat_stress_chain(11)
        base = base_rate_mbps(chain, profiles)
        chains = [chain.with_slo(SLO(t_min=0.5 * base, t_max=gbps(100)))]
        placement = brute_force_place(chains, topology_for("paper-testbed").build(), profiles,
                                      per_chain_limit=20)
        assert placement.feasible


class TestMILP:
    def test_linear_chains_solved(self, profiles):
        chains = chains_from_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(50))],
        )
        placement = milp_place(chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible
        assert placement.rates["a"] >= gbps(1)

    def test_branched_chain_rejected(self, profiles, branched_chain):
        with pytest.raises(PlacementError):
            milp_place([branched_chain], topology_for("paper-testbed").build(), profiles)

    def test_infeasible_tmin(self, profiles):
        chains = chains_from_spec(
            "chain a: Dedup -> Limiter -> IPv4Fwd",
            slos=[SLO(t_min=gbps(30))],
        )
        placement = milp_place(chains, topology_for("paper-testbed").build(), profiles)
        assert not placement.feasible

    def test_run_to_completion_fusion(self, profiles):
        """The MILP fuses adjacent server NFs into one segment."""
        chains = chains_from_spec(
            "chain a: Dedup -> UrlFilter -> IPv4Fwd",
            slos=[SLO(t_min=100.0, t_max=gbps(100))],
        )
        placement = milp_place(chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible
        (cp,) = placement.chains
        assert len(cp.subgroups) == 1
        assert len(cp.subgroups[0].node_ids) == 2


class TestAblations:
    def test_no_core_allocation_single_core(self, profiles):
        chains = chains_with_delta([2, 3], delta=0.5)
        placement = no_core_allocation_place(chains, topology_for("paper-testbed").build(),
                                             profiles)
        if placement.feasible:
            for cp in placement.chains:
                assert all(sg.cores == 1 for sg in cp.subgroups)

    def test_no_core_allocation_dies_early(self, profiles):
        """Paper: 'this variant can only satisfy SLOs at δ = 0.5'."""
        from repro.core.heuristic import heuristic_place
        ok = no_core_allocation_place(
            chains_with_delta([2, 3], delta=0.5), topology_for("paper-testbed").build(), profiles
        )
        dead = no_core_allocation_place(
            chains_with_delta([2, 3], delta=1.5), topology_for("paper-testbed").build(), profiles
        )
        lemur = heuristic_place(
            chains_with_delta([2, 3], delta=1.5), topology_for("paper-testbed").build(), profiles
        )
        assert ok.feasible
        assert not dead.feasible
        assert lemur.feasible

    def test_no_profiling_weaker_than_lemur(self, profiles):
        from repro.core.heuristic import heuristic_place
        chains = chains_with_delta([1, 2, 3], delta=1.0)
        flat = no_profiling_place(chains, topology_for("paper-testbed").build(), profiles)
        lemur = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        assert lemur.feasible
        if flat.feasible:
            assert flat.objective_mbps <= lemur.objective_mbps + 1e-6


class TestExtensions:
    def test_failure_replan(self, simple_chains):
        placer = Placer(topology=topology_for("paper-smartnic").build())
        placement = placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        )).placement
        assert placement.feasible
        # topology restored afterwards
        assert "agilio0" not in placer.topology.failed_devices

    def test_slo_schedule(self, simple_chains):
        placer = Placer()
        schedule = {
            "alpha": [SLO(t_min=gbps(1), t_max=gbps(50)),
                      SLO(t_min=gbps(3), t_max=gbps(50))],
            "beta": [SLO(t_min=gbps(1), t_max=gbps(50)),
                     SLO(t_min=gbps(0.5), t_max=gbps(50))],
        }
        placements = placer.precompute_slo_schedule(simple_chains, schedule)
        assert len(placements) == 2
        assert all(p.feasible for p in placements)
        assert placements[1].chains[0].chain.slo.t_min == gbps(3)

    def test_slo_schedule_mismatched_slots(self, simple_chains):
        placer = Placer()
        with pytest.raises(PlacementError):
            placer.precompute_slo_schedule(
                simple_chains,
                {"alpha": [SLO()], "beta": [SLO(), SLO()]},
            )

    def test_slo_schedule_missing_chain(self, simple_chains):
        placer = Placer()
        with pytest.raises(PlacementError):
            placer.precompute_slo_schedule(simple_chains, {"alpha": [SLO()]})
