"""Placer.solve(PlacementRequest) and the deprecated wrapper delegation."""

import pytest

from repro.core.cache import PlacementCache
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementReport,
    PlacementRequest,
)
from repro.exceptions import PlacementError
from repro.hw.spec import topology_for


class TestSolve:
    def test_solve_returns_report(self, simple_chains):
        report = Placer().solve(PlacementRequest(chains=simple_chains))
        assert isinstance(report, PlacementReport)
        assert report.placement.feasible
        assert report.strategy == "lemur"
        assert report.seconds > 0
        assert report.cache_hit is False
        assert report.fingerprint is None  # no cache attached

    def test_solve_strategy_override(self, simple_chains):
        report = Placer().solve(
            PlacementRequest(chains=simple_chains, strategy="greedy")
        )
        assert report.strategy == "greedy"
        assert report.placement.strategy == "greedy"

    def test_solve_unknown_strategy(self, simple_chains):
        with pytest.raises(PlacementError):
            Placer().solve(
                PlacementRequest(chains=simple_chains, strategy="quantum")
            )

    def test_solve_with_failed_devices_restores(self, simple_chains):
        placer = Placer(topology=topology_for("paper-smartnic").build())
        report = placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        ))
        assert report.placement.feasible
        assert "agilio0" not in placer.topology.failed_devices

    def test_solve_preexisting_failure_stays(self, simple_chains):
        placer = Placer(topology=topology_for("paper-smartnic").build())
        placer.topology.mark_failed("agilio0")
        placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        ))
        assert "agilio0" in placer.topology.failed_devices

    def test_solve_with_reserve_restores(self, simple_chains):
        placer = Placer()
        before = [s.reserved_cores for s in placer.topology.servers]
        report = placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=2,
        ))
        assert report.placement is not None
        assert [s.reserved_cores for s in placer.topology.servers] == before

    def test_solve_negative_reserve_rejected(self, simple_chains):
        with pytest.raises(PlacementError):
            Placer().solve(PlacementRequest(
                chains=simple_chains, reserve_cores=-1,
            ))

    def test_solve_excessive_reserve_rejected_and_restored(
            self, simple_chains):
        placer = Placer()
        before = [s.reserved_cores for s in placer.topology.servers]
        with pytest.raises(PlacementError):
            placer.solve(PlacementRequest(
                chains=simple_chains, reserve_cores=100,
            ))
        assert [s.reserved_cores for s in placer.topology.servers] == before


class TestSolveCaching:
    def test_repeat_solve_hits_cache(self, simple_chains):
        placer = Placer(cache=PlacementCache())
        first = placer.solve(PlacementRequest(chains=simple_chains))
        second = placer.solve(PlacementRequest(chains=simple_chains))
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert first.fingerprint == second.fingerprint
        assert second.placement.rates == first.placement.rates

    def test_request_can_bypass_cache(self, simple_chains):
        placer = Placer(cache=PlacementCache())
        placer.solve(PlacementRequest(chains=simple_chains))
        fresh = placer.solve(PlacementRequest(
            chains=simple_chains, use_cache=False,
        ))
        assert fresh.cache_hit is False
        assert fresh.fingerprint is None

    def test_scenario_knobs_partition_the_key(self, simple_chains):
        placer = Placer(topology=topology_for("paper-smartnic").build(),
                        cache=PlacementCache())
        plain = placer.solve(PlacementRequest(chains=simple_chains))
        failed = placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        ))
        reserved = placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=2,
        ))
        keys = {plain.fingerprint, failed.fingerprint, reserved.fingerprint}
        assert len(keys) == 3
        assert not failed.cache_hit and not reserved.cache_hit

    def test_rate_objective_in_key(self, simple_chains):
        cache = PlacementCache()
        marginal = Placer(cache=cache)
        fair = Placer(cache=cache,
                      config=PlacerConfig(rate_objective="max_min"))
        a = marginal.solve(PlacementRequest(chains=simple_chains))
        b = fair.solve(PlacementRequest(chains=simple_chains))
        assert a.fingerprint != b.fingerprint
        assert not b.cache_hit


class TestIncrementalSolve:
    def _arrival(self, base_chains, extra_spec, extra_slo):
        from repro.chain.graph import chains_from_spec

        (new_chain,) = chains_from_spec(extra_spec, slos=[extra_slo])
        return list(base_chains) + [new_chain]

    def test_arrival_pins_existing_assignments(self, simple_chains):
        from repro.chain.slo import SLO
        from repro.units import gbps

        placer = Placer()
        base = placer.solve(PlacementRequest(chains=simple_chains))
        grown = self._arrival(
            simple_chains, "chain gamma: Monitor -> IPv4Fwd",
            SLO(t_min=gbps(0.5), t_max=gbps(30)),
        )
        report = placer.solve(PlacementRequest(
            chains=grown, base_placement=base.placement,
        ))
        assert report.mode == "incremental"
        assert report.pinned_chains == len(simple_chains)
        assert report.placed_chains == 1
        assert report.placement.feasible
        by_name = {cp.name: cp for cp in report.placement.chains}
        for cp in base.placement.chains:
            assert by_name[cp.name].assignment == cp.assignment
        for cp in report.placement.chains:
            assert report.placement.rates[cp.name] >= \
                cp.chain.slo.t_min - 1e-6

    def test_departure_reuses_pattern_and_resolves_rates(self, simple_chains):
        placer = Placer()
        base = placer.solve(PlacementRequest(chains=simple_chains)).placement
        report = placer.solve(PlacementRequest(
            chains=simple_chains[:1], base_placement=base,
        ))
        assert report.mode == "incremental"
        assert report.placed_chains == 0
        assert report.placement.feasible
        (cp,) = report.placement.chains
        base_cp = next(b for b in base.chains if b.name == cp.name)
        assert cp.assignment == base_cp.assignment
        # the departed chain's capacity is released to the survivor
        assert report.placement.rates[cp.name] >= base.rates[cp.name] - 1e-6

    def test_scale_keeps_assignment_updates_lp(self, simple_chains):
        placer = Placer()
        base = placer.solve(PlacementRequest(chains=simple_chains)).placement
        scaled = [simple_chains[0].with_slo(
            simple_chains[0].slo.with_tmin(simple_chains[0].slo.t_min * 2)
        )] + list(simple_chains[1:])
        report = placer.solve(PlacementRequest(
            chains=scaled, base_placement=base,
        ))
        assert report.mode == "incremental"
        assert report.placed_chains == 0  # same structure: still pinned
        assert report.placement.feasible
        name = simple_chains[0].name
        assert report.placement.rates[name] >= \
            simple_chains[0].slo.t_min * 2 - 1e-6

    def test_infeasible_base_rejected(self, simple_chains):
        from repro.core.placement import Placement

        with pytest.raises(PlacementError):
            Placer().solve(PlacementRequest(
                chains=simple_chains,
                base_placement=Placement(chains=[], feasible=False),
            ))

    def test_full_solve_unaffected(self, simple_chains):
        report = Placer().solve(PlacementRequest(chains=simple_chains))
        assert report.mode == "full"
        assert report.pinned_chains == 0 and report.placed_chains == 0

    def test_warm_start_partitions_cache_key(self, simple_chains):
        placer = Placer(cache=PlacementCache())
        base = placer.solve(PlacementRequest(chains=simple_chains))
        warm = placer.solve(PlacementRequest(
            chains=simple_chains, base_placement=base.placement,
        ))
        assert warm.fingerprint != base.fingerprint
        assert not warm.cache_hit
        again = placer.solve(PlacementRequest(
            chains=simple_chains, base_placement=base.placement,
        ))
        assert again.cache_hit
        assert again.fingerprint == warm.fingerprint


class TestTailLatencyObjective:
    def _chain(self, d_max=float("inf")):
        from repro.chain.graph import chains_from_spec
        from repro.chain.slo import SLO
        from repro.units import gbps

        return chains_from_spec(
            "chain a: Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(0.5), t_max=gbps(30), d_max=d_max)],
        )

    def test_unknown_objective_rejected(self, simple_chains):
        with pytest.raises(PlacementError, match="objective"):
            Placer().solve(PlacementRequest(
                chains=simple_chains, objective="latency",
            ))

    def test_cap_trades_rate_for_headroom(self):
        throughput = Placer().solve(
            PlacementRequest(chains=self._chain()))
        tail = Placer().solve(PlacementRequest(
            chains=self._chain(), objective="tail_latency"))
        assert throughput.placement.feasible
        assert tail.placement.feasible
        # the utilization cap binds below the burst cap the throughput
        # objective saturates, but never below the admitted t_min floor
        assert tail.placement.rates["a"] < throughput.placement.rates["a"]
        assert tail.placement.rates["a"] >= self._chain()[0].slo.t_min

    def test_queueing_aware_tail_gates_admission(self):
        # 20 µs passes the fixed-cost d_max check (~11.5 µs) but not the
        # capped-utilization queueing-aware tail (~24 µs): only the
        # tail_latency objective rejects it, with the tail in the reason
        loose = Placer().solve(PlacementRequest(
            chains=self._chain(d_max=20.0)))
        assert loose.placement.feasible
        tight = Placer().solve(PlacementRequest(
            chains=self._chain(d_max=20.0), objective="tail_latency"))
        assert not tight.placement.feasible
        assert "queueing-aware tail latency" in \
            tight.placement.infeasible_reason

    def test_objective_partitions_cache_key(self, simple_chains):
        placer = Placer(cache=PlacementCache())
        first = placer.solve(PlacementRequest(chains=simple_chains))
        tail = placer.solve(PlacementRequest(
            chains=simple_chains, objective="tail_latency"))
        again = placer.solve(PlacementRequest(chains=simple_chains))
        assert first.cache_hit is False
        assert tail.cache_hit is False
        assert tail.fingerprint != first.fingerprint
        assert again.cache_hit is True
        assert again.fingerprint == first.fingerprint
