"""Placer.solve(PlacementRequest) and the deprecated wrapper delegation."""

import pytest

from repro.core.cache import PlacementCache
from repro.core.placer import (
    Placer,
    PlacerConfig,
    PlacementReport,
    PlacementRequest,
)
from repro.exceptions import PlacementError
from repro.hw.topology import default_testbed


class TestSolve:
    def test_solve_returns_report(self, simple_chains):
        report = Placer().solve(PlacementRequest(chains=simple_chains))
        assert isinstance(report, PlacementReport)
        assert report.placement.feasible
        assert report.strategy == "lemur"
        assert report.seconds > 0
        assert report.cache_hit is False
        assert report.fingerprint is None  # no cache attached

    def test_solve_strategy_override(self, simple_chains):
        report = Placer().solve(
            PlacementRequest(chains=simple_chains, strategy="greedy")
        )
        assert report.strategy == "greedy"
        assert report.placement.strategy == "greedy"

    def test_solve_unknown_strategy(self, simple_chains):
        with pytest.raises(PlacementError):
            Placer().solve(
                PlacementRequest(chains=simple_chains, strategy="quantum")
            )

    def test_solve_with_failed_devices_restores(self, simple_chains):
        placer = Placer(topology=default_testbed(with_smartnic=True))
        report = placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        ))
        assert report.placement.feasible
        assert "agilio0" not in placer.topology.failed_devices

    def test_solve_preexisting_failure_stays(self, simple_chains):
        placer = Placer(topology=default_testbed(with_smartnic=True))
        placer.topology.mark_failed("agilio0")
        placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        ))
        assert "agilio0" in placer.topology.failed_devices

    def test_solve_with_reserve_restores(self, simple_chains):
        placer = Placer()
        before = [s.reserved_cores for s in placer.topology.servers]
        report = placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=2,
        ))
        assert report.placement is not None
        assert [s.reserved_cores for s in placer.topology.servers] == before

    def test_solve_negative_reserve_rejected(self, simple_chains):
        with pytest.raises(PlacementError):
            Placer().solve(PlacementRequest(
                chains=simple_chains, reserve_cores=-1,
            ))

    def test_solve_excessive_reserve_rejected_and_restored(
            self, simple_chains):
        placer = Placer()
        before = [s.reserved_cores for s in placer.topology.servers]
        with pytest.raises(PlacementError):
            placer.solve(PlacementRequest(
                chains=simple_chains, reserve_cores=100,
            ))
        assert [s.reserved_cores for s in placer.topology.servers] == before


class TestSolveCaching:
    def test_repeat_solve_hits_cache(self, simple_chains):
        placer = Placer(cache=PlacementCache())
        first = placer.solve(PlacementRequest(chains=simple_chains))
        second = placer.solve(PlacementRequest(chains=simple_chains))
        assert first.cache_hit is False
        assert second.cache_hit is True
        assert first.fingerprint == second.fingerprint
        assert second.placement.rates == first.placement.rates

    def test_request_can_bypass_cache(self, simple_chains):
        placer = Placer(cache=PlacementCache())
        placer.solve(PlacementRequest(chains=simple_chains))
        fresh = placer.solve(PlacementRequest(
            chains=simple_chains, use_cache=False,
        ))
        assert fresh.cache_hit is False
        assert fresh.fingerprint is None

    def test_scenario_knobs_partition_the_key(self, simple_chains):
        placer = Placer(topology=default_testbed(with_smartnic=True),
                        cache=PlacementCache())
        plain = placer.solve(PlacementRequest(chains=simple_chains))
        failed = placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        ))
        reserved = placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=2,
        ))
        keys = {plain.fingerprint, failed.fingerprint, reserved.fingerprint}
        assert len(keys) == 3
        assert not failed.cache_hit and not reserved.cache_hit

    def test_rate_objective_in_key(self, simple_chains):
        cache = PlacementCache()
        marginal = Placer(cache=cache)
        fair = Placer(cache=cache,
                      config=PlacerConfig(rate_objective="max_min"))
        a = marginal.solve(PlacementRequest(chains=simple_chains))
        b = fair.solve(PlacementRequest(chains=simple_chains))
        assert a.fingerprint != b.fingerprint
        assert not b.cache_hit


class TestDeprecatedWrappers:
    @pytest.fixture(autouse=True)
    def rearm_warn_once(self):
        """Wrappers warn once per process; re-arm so each test sees its
        warning regardless of suite order."""
        from repro.core.placer import _reset_deprecation_warnings

        _reset_deprecation_warnings()
        yield
        _reset_deprecation_warnings()

    def test_place_delegates(self, simple_chains):
        placer = Placer()
        with pytest.warns(DeprecationWarning, match="Placer.place is"):
            placement = placer.place(simple_chains)
        report = placer.solve(PlacementRequest(chains=simple_chains))
        assert placement.feasible == report.placement.feasible
        assert placement.rates == report.placement.rates

    def test_place_timed_delegates(self, simple_chains):
        with pytest.warns(DeprecationWarning, match="place_timed"):
            placement, seconds = Placer().place_timed(simple_chains)
        assert placement.feasible
        assert seconds > 0

    def test_place_with_reserve_delegates(self, simple_chains):
        placer = Placer()
        with pytest.warns(DeprecationWarning, match="place_with_reserve"):
            placement = placer.place_with_reserve(simple_chains,
                                                  reserve_cores=2)
        direct = placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=2,
        )).placement
        assert placement.rates == direct.rates

    def test_replan_after_failure_delegates(self, simple_chains):
        placer = Placer(topology=default_testbed(with_smartnic=True))
        with pytest.warns(DeprecationWarning, match="replan_after_failure"):
            placement = placer.replan_after_failure(simple_chains, "agilio0")
        direct = placer.solve(PlacementRequest(
            chains=simple_chains, failed_devices=("agilio0",),
        )).placement
        assert placement.rates == direct.rates
        assert "agilio0" not in placer.topology.failed_devices
