"""Subgroup formation and coalescing tests (§3.2)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.core.patterns import preferred_assignment
from repro.core.placement import NodeAssignment
from repro.core.subgroups import (
    apply_coalesce,
    coalesced_cycles,
    evaluate_coalesce,
    find_coalesce_candidates,
    form_subgroups,
)
from repro.hw.platform import Platform
from repro.profiles.defaults import NSH_ENCAP_DECAP_CYCLES, default_profiles


@pytest.fixture()
def profiles():
    return default_profiles()


def assign_all_server(chain):
    return {
        nid: NodeAssignment(Platform.SERVER, "server0")
        for nid in chain.graph.nodes
    }


class TestFormation:
    def test_consecutive_server_nfs_fuse(self, profiles):
        chain = chains_from_spec("chain c: Dedup -> Monitor -> Limiter")[0]
        subgroups = form_subgroups(chain, assign_all_server(chain), profiles)
        assert len(subgroups) == 1
        assert len(subgroups[0].node_ids) == 3

    def test_switch_nf_splits_run(self, profiles):
        chain = chains_from_spec("chain c: Dedup -> ACL -> Monitor")[0]
        assignment = assign_all_server(chain)
        acl = next(n for n in chain.graph.nodes.values()
                   if n.nf_class == "ACL")
        assignment[acl.node_id] = NodeAssignment(Platform.PISA, "tofino0")
        subgroups = form_subgroups(chain, assignment, profiles)
        assert len(subgroups) == 2

    def test_cycles_include_nsh_overhead(self, profiles):
        chain = chains_from_spec("chain c: Monitor")[0]
        (sg,) = form_subgroups(chain, assign_all_server(chain), profiles)
        expected = NSH_ENCAP_DECAP_CYCLES + profiles.server_cycles("Monitor")
        assert sg.cycles == pytest.approx(expected)

    def test_branch_weighting(self, profiles):
        chain = chains_from_spec(
            "chain c: BPF -> [Encrypt, Monitor] -> Limiter"
        )[0]
        subgroups = form_subgroups(chain, assign_all_server(chain), profiles)
        enc = next(sg for sg in subgroups
                   if chain.graph.nodes[sg.node_ids[0]].nf_class == "Encrypt")
        expected = NSH_ENCAP_DECAP_CYCLES + 0.5 * profiles.server_cycles(
            "Encrypt")
        assert enc.cycles == pytest.approx(expected)

    def test_non_replicable_members(self, profiles):
        chain = chains_from_spec("chain c: Dedup -> Limiter")[0]
        (sg,) = form_subgroups(chain, assign_all_server(chain), profiles)
        assert not sg.replicable  # Limiter is bold in Table 3

    def test_branch_node_makes_non_replicable(self, profiles):
        chain = chains_from_spec("chain c: Monitor -> [Encrypt, Dedup]")[0]
        subgroups = form_subgroups(chain, assign_all_server(chain), profiles)
        monitor_sg = next(
            sg for sg in subgroups
            if chain.graph.nodes[sg.node_ids[0]].nf_class == "Monitor"
        )
        assert not monitor_sg.replicable

    def test_replicable_plain_run(self, profiles):
        chain = chains_from_spec("chain c: Dedup -> Monitor")[0]
        (sg,) = form_subgroups(chain, assign_all_server(chain), profiles)
        assert sg.replicable


class TestCoalescing:
    def _sandwich(self, profiles):
        """{Dedup} -> ACL(switch) -> {Monitor}."""
        chain = chains_from_spec("chain c: Dedup -> ACL -> Monitor")[0]
        assignment = assign_all_server(chain)
        acl = next(n for n in chain.graph.nodes.values()
                   if n.nf_class == "ACL")
        assignment[acl.node_id] = NodeAssignment(Platform.PISA, "tofino0")
        subgroups = form_subgroups(chain, assignment, profiles)
        return chain, assignment, subgroups

    def test_candidate_found(self, profiles):
        chain, assignment, subgroups = self._sandwich(profiles)
        candidates = find_coalesce_candidates(chain, assignment, subgroups)
        assert len(candidates) == 1
        assert chain.graph.nodes[candidates[0].switch_node].nf_class == "ACL"

    def test_no_candidate_without_sandwich(self, profiles):
        chain = chains_from_spec("chain c: ACL -> Dedup -> Monitor")[0]
        assignment = assign_all_server(chain)
        acl = next(n for n in chain.graph.nodes.values()
                   if n.nf_class == "ACL")
        assignment[acl.node_id] = NodeAssignment(Platform.PISA, "tofino0")
        subgroups = form_subgroups(chain, assignment, profiles)
        assert find_coalesce_candidates(chain, assignment, subgroups) == []

    def test_coalesced_cycles_save_one_nsh_boundary(self, profiles):
        chain, assignment, subgroups = self._sandwich(profiles)
        (candidate,) = find_coalesce_candidates(chain, assignment, subgroups)
        fused = coalesced_cycles(chain, candidate, subgroups, profiles)
        separate = sum(sg.cycles for sg in subgroups)
        moved = profiles.server_cycles("ACL")
        assert fused == pytest.approx(
            separate + moved - NSH_ENCAP_DECAP_CYCLES
        )

    def test_apply_coalesce_fuses(self, profiles):
        chain, assignment, subgroups = self._sandwich(profiles)
        (candidate,) = find_coalesce_candidates(chain, assignment, subgroups)
        new_assignment, new_subgroups = apply_coalesce(
            chain, candidate, assignment, profiles
        )
        assert len(new_subgroups) == 1
        assert new_assignment[candidate.switch_node].platform is \
            Platform.SERVER

    def test_aggressive_rule_checks_tmin(self, profiles):
        from repro.chain.slo import SLO
        chain, assignment, subgroups = self._sandwich(profiles)
        (candidate,) = find_coalesce_candidates(chain, assignment, subgroups)
        ok = evaluate_coalesce(
            chain.with_slo(SLO(t_min=100.0)), candidate, subgroups, profiles,
            freq_hz=1.7e9, packet_bits=12000,
            rule="aggressive", current_bottleneck_mbps=500.0,
        )
        assert ok  # fused 1-core rate ~540 Mbps >= 100
        not_ok = evaluate_coalesce(
            chain.with_slo(SLO(t_min=5000.0)), candidate, subgroups, profiles,
            freq_hz=1.7e9, packet_bits=12000,
            rule="aggressive", current_bottleneck_mbps=500.0,
        )
        assert not not_ok

    def test_conservative_rule_checks_bottleneck(self, profiles):
        chain, assignment, subgroups = self._sandwich(profiles)
        (candidate,) = find_coalesce_candidates(chain, assignment, subgroups)
        assert evaluate_coalesce(
            chain, candidate, subgroups, profiles, 1.7e9, 12000,
            rule="conservative", current_bottleneck_mbps=400.0,
        )
        assert not evaluate_coalesce(
            chain, candidate, subgroups, profiles, 1.7e9, 12000,
            rule="conservative", current_bottleneck_mbps=2000.0,
        )

    def test_unknown_rule_raises(self, profiles):
        chain, assignment, subgroups = self._sandwich(profiles)
        (candidate,) = find_coalesce_candidates(chain, assignment, subgroups)
        with pytest.raises(ValueError):
            evaluate_coalesce(chain, candidate, subgroups, profiles,
                              1.7e9, 12000, rule="bogus",
                              current_bottleneck_mbps=0.0)
