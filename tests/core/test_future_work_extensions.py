"""Tests for the implemented future-work extensions: max-min fair rates
(§2 footnote 2), Metron-style steering (§3.2/§4.2), and proactive
failover reserves (§7)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.heuristic import heuristic_place
from repro.core.lp import solve_rates
from repro.core.placer import Placer, PlacerConfig, PlacementRequest
from repro.exceptions import PlacementError
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def _contended_placement(profiles, topo):
    """Two NIC-sharing chains whose caps each exceed the 40G NIC share.

    Monitor is cheap (~30 G per core), so both chains' subgroup caps sit
    far above the NIC's fair share and the 40 G link is the only binding
    constraint — the regime where the rate split is a pure policy choice.
    """
    spec = (
        "chain fat: ACL -> Monitor -> IPv4Fwd\n"
        "chain thin: BPF -> Monitor -> IPv4Fwd"
    )
    chains = chains_from_spec(spec, slos=[
        SLO(t_min=gbps(2), t_max=gbps(100)),
        SLO(t_min=gbps(1), t_max=gbps(100)),
    ])
    placement = heuristic_place(chains, topo, profiles)
    assert placement.feasible
    return placement


class TestMaxMinFairness:
    def test_equalizes_marginals_under_contention(self, profiles):
        topo = topology_for("paper-testbed").build()
        placement = _contended_placement(profiles, topo)
        fair = solve_rates(placement.chains, topo, objective="max_min")
        assert fair.feasible
        marginals = [
            fair.rates[cp.name] - cp.chain.slo.t_min
            for cp in placement.chains
        ]
        assert marginals[0] == pytest.approx(marginals[1], rel=0.05)

    def test_cap_bound_chain_saturates_not_equalizes(self, profiles):
        """When one chain's capacity cap binds below the fair share, it
        saturates at its cap and the other takes the remaining headroom
        (lexicographic max-min, not naive equalization)."""
        topo = topology_for("paper-testbed").build()
        spec = (
            "chain fat: ACL -> Monitor -> IPv4Fwd\n"
            "chain thin: BPF -> Encrypt -> IPv4Fwd"
        )
        chains = chains_from_spec(spec, slos=[
            SLO(t_min=gbps(2), t_max=gbps(100)),
            SLO(t_min=gbps(1), t_max=gbps(100)),
        ])
        placement = heuristic_place(chains, topo, profiles)
        fair = solve_rates(placement.chains, topo, objective="max_min")
        assert fair.feasible
        thin_cp = next(cp for cp in placement.chains if cp.name == "thin")
        if thin_cp.estimated_rate < gbps(15):  # its cap binds
            assert fair.rates["thin"] == pytest.approx(
                thin_cp.estimated_rate, rel=0.01
            )
            assert fair.rates["fat"] > fair.rates["thin"]

    def test_same_aggregate_when_nic_binds(self, profiles):
        """Fairness re-splits but cannot create capacity."""
        topo = topology_for("paper-testbed").build()
        placement = _contended_placement(profiles, topo)
        marginal = solve_rates(placement.chains, topo, objective="marginal")
        fair = solve_rates(placement.chains, topo, objective="max_min")
        total_marginal = sum(marginal.rates.values())
        total_fair = sum(fair.rates.values())
        assert total_fair <= total_marginal + 1e-6

    def test_virtual_pipe_does_not_drag_floor(self, profiles):
        """A zero-headroom chain saturates instead of capping everyone."""
        topo = topology_for("paper-testbed").build()
        spec = (
            "chain a: ACL -> Encrypt -> IPv4Fwd\n"
            "chain pinned: ACL -> Monitor -> IPv4Fwd"
        )
        chains = chains_from_spec(spec, slos=[
            SLO(t_min=gbps(1), t_max=gbps(100)),
            SLO(t_min=gbps(2), t_max=gbps(2)),  # virtual pipe, headroom 0
        ])
        placement = heuristic_place(chains, topo, profiles)
        fair = solve_rates(placement.chains, topo, objective="max_min")
        assert fair.feasible
        assert fair.rates["pinned"] == pytest.approx(gbps(2))
        assert fair.rates["a"] > gbps(10)  # floor not dragged to zero

    def test_tmin_always_respected(self, profiles):
        topo = topology_for("paper-testbed").build()
        placement = _contended_placement(profiles, topo)
        fair = solve_rates(placement.chains, topo, objective="max_min")
        for cp in placement.chains:
            assert fair.rates[cp.name] >= cp.chain.slo.t_min - 1e-6

    def test_unknown_objective_rejected(self, profiles):
        topo = topology_for("paper-testbed").build()
        placement = _contended_placement(profiles, topo)
        with pytest.raises(ValueError):
            solve_rates(placement.chains, topo, objective="karma")

    def test_placer_config_objective(self, profiles, simple_chains):
        placer = Placer(
            profiles=profiles,
            config=PlacerConfig(rate_objective="max_min"),
        )
        placement = placer.solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        assert placement.feasible


class TestMetronSteering:
    def test_frees_demux_core(self):
        plain = topology_for("paper-testbed").build()
        metron = topology_for("metron").build()
        assert metron.total_server_cores() == plain.total_server_cores() + 1

    def test_no_demux_penalty_on_replication(self, profiles):
        spec = "chain c: ACL -> Encrypt -> IPv4Fwd"
        slos = [SLO(t_min=gbps(6), t_max=gbps(35))]
        plain = heuristic_place(
            chains_from_spec(spec, slos=slos), topology_for("paper-testbed").build(), profiles
        )
        metron = heuristic_place(
            chains_from_spec(spec, slos=slos),
            topology_for("metron").build(), profiles,
        )
        assert plain.feasible and metron.feasible
        assert metron.chains[0].estimated_rate > \
            plain.chains[0].estimated_rate

    def test_metron_never_worse(self, profiles):
        from repro.experiments.chains import chains_with_delta
        for delta in (0.5, 1.0, 1.5):
            chains = chains_with_delta([1, 2, 3], delta=delta,
                                       profiles=profiles)
            plain = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
            metron = heuristic_place(
                chains, topology_for("metron").build(), profiles
            )
            if plain.feasible:
                assert metron.feasible
                assert metron.objective_mbps >= plain.objective_mbps - 1e-6


class TestFailoverReserve:
    def test_reserve_shrinks_budget(self, profiles, simple_chains):
        placer = Placer(profiles=profiles)
        reserved = placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=5,
        )).placement
        unreserved = placer.solve(
            PlacementRequest(chains=simple_chains)
        ).placement
        assert reserved.feasible
        assert reserved.total_cores()["server0"] <= 10  # 15 - 5
        assert unreserved.total_cores()["server0"] > 10

    def test_topology_restored_after_reserve(self, profiles, simple_chains):
        placer = Placer(profiles=profiles)
        before = placer.topology.servers[0].reserved_cores
        placer.solve(PlacementRequest(
            chains=simple_chains, reserve_cores=3,
        ))
        assert placer.topology.servers[0].reserved_cores == before

    def test_excessive_reserve_rejected(self, profiles, simple_chains):
        placer = Placer(profiles=profiles)
        with pytest.raises(PlacementError):
            placer.solve(PlacementRequest(
                chains=simple_chains, reserve_cores=16,
            ))
        with pytest.raises(PlacementError):
            placer.solve(PlacementRequest(
                chains=simple_chains, reserve_cores=-1,
            ))

    def test_reserve_survives_failover(self, profiles):
        """The point of the reserve: a placement decided with spare cores
        stays feasible when a SmartNIC fails and its NF falls back."""
        topo = topology_for("paper-smartnic").build()
        placer = Placer(topology=topo, profiles=profiles)
        chains = chains_from_spec(
            "chain c: BPF -> FastEncrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(4), t_max=gbps(39))],
        )
        placer.solve(PlacementRequest(chains=chains, reserve_cores=4))
        fallback = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("agilio0",),
        )).placement
        assert fallback.feasible
