"""Placement cache: key stability, hit/miss semantics, isolation."""

import pytest

from repro.core.cache import (
    PlacementCache,
    canonical,
    get_cache,
    placement_fingerprint,
    scoped_cache,
    set_cache,
)
from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta
from repro.hw.spec import topology_for
from repro.obs import scoped_registry
from repro.profiles.defaults import default_profiles
from repro.units import DEFAULT_PACKET_BITS


@pytest.fixture()
def profiles():
    return default_profiles()


@pytest.fixture()
def chains(profiles):
    return chains_with_delta([2, 3], delta=0.5, profiles=profiles)


def fingerprint(chains, profiles, topology=None, strategy="Lemur",
                packet_bits=DEFAULT_PACKET_BITS):
    return placement_fingerprint(
        chains, topology or topology_for("paper-testbed").build(), profiles,
        strategy, packet_bits,
    )


class TestFingerprintStability:
    def test_identical_inputs_identical_key(self, profiles, chains):
        a = fingerprint(chains, profiles)
        b = fingerprint(
            chains_with_delta([2, 3], delta=0.5, profiles=profiles),
            default_profiles(),
        )
        assert a == b

    def test_key_is_hex_digest(self, profiles, chains):
        key = fingerprint(chains, profiles)
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_delta_changes_key(self, profiles):
        lo = fingerprint(chains_with_delta([2], 0.5, profiles=profiles),
                         profiles)
        hi = fingerprint(chains_with_delta([2], 1.0, profiles=profiles),
                         profiles)
        assert lo != hi

    def test_strategy_changes_key(self, profiles, chains):
        assert fingerprint(chains, profiles, strategy="Lemur") != \
            fingerprint(chains, profiles, strategy="Greedy")

    def test_packet_bits_changes_key(self, profiles, chains):
        assert fingerprint(chains, profiles, packet_bits=1500 * 8) != \
            fingerprint(chains, profiles, packet_bits=256 * 8)

    def test_topology_state_changes_key(self, profiles, chains):
        base = fingerprint(chains, profiles)
        assert base != fingerprint(chains, profiles,
                                   topology=topology_for("multi-server").build())
        failed = topology_for("paper-testbed").build()
        failed.mark_failed("server0")
        assert base != fingerprint(chains, profiles, topology=failed)
        reserved = topology_for("paper-testbed").build()
        reserved.servers[0].reserved_cores += 2
        assert base != fingerprint(chains, profiles, topology=reserved)

    def test_profile_error_changes_key(self, profiles, chains):
        assert fingerprint(chains, profiles) != \
            fingerprint(chains, profiles.with_error(-0.05))

    def test_private_attributes_ignored(self):
        class Thing:
            def __init__(self):
                self.value = 1
                self._scratch = object()

        a, b = Thing(), Thing()
        b._scratch = object()
        assert canonical(a) == canonical(b)


class TestCacheSemantics:
    def test_miss_then_hit(self, profiles, chains):
        cache = PlacementCache()
        key = fingerprint(chains, profiles)
        assert cache.get(key) is None
        placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        cache.put(key, placement)
        hit = cache.get(key)
        assert hit is not None
        assert hit.feasible == placement.feasible
        assert hit.rates == placement.rates
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "hit_rate": 0.5,
        }

    def test_hit_is_a_copy(self, profiles, chains):
        cache = PlacementCache()
        placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        cache.put("k", placement)
        first = cache.get("k")
        first.rates["chain2"] = -1.0
        second = cache.get("k")
        assert second.rates != first.rates

    def test_put_stores_a_copy(self, profiles, chains):
        cache = PlacementCache()
        placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        cache.put("k", placement)
        placement.rates["chain2"] = -1.0
        assert cache.get("k").rates["chain2"] != -1.0

    def test_lru_eviction(self):
        from repro.core.placement import Placement

        cache = PlacementCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.put(key, Placement(chains=[]))
        assert len(cache) == 2
        assert cache.get("a") is None      # evicted (oldest)
        assert cache.get("c") is not None

    def test_disabled_cache_never_hits(self, profiles, chains):
        from repro.core.placement import Placement

        cache = PlacementCache(enabled=False)
        cache.put("k", Placement(chains=[]))
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_obs_counters(self, profiles, chains):
        cache = PlacementCache()
        with scoped_registry() as registry:
            cache.get("missing")
            cache.put("k", heuristic_place(chains, topology_for("paper-testbed").build(),
                                           profiles))
            cache.get("k")
            assert registry.counter_value(
                "placement_cache.lookups", result="miss") == 1
            assert registry.counter_value(
                "placement_cache.lookups", result="hit") == 1


class TestFailureStateIsolation:
    """A device failure must change the fingerprint: the cache may never
    serve a pre-failure placement to a post-failure solve."""

    def test_failed_device_never_served_stale(self, profiles, chains):
        from repro.core.placer import Placer, PlacementRequest

        topology = topology_for("paper-smartnic").build()
        cache = PlacementCache()
        placer = Placer(topology=topology, profiles=profiles, cache=cache)

        healthy = placer.solve(PlacementRequest(chains=chains))
        assert not healthy.cache_hit

        failed = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("agilio0",)))
        # different problem, different fingerprint: a miss, not a stale hit
        assert not failed.cache_hit
        assert failed.fingerprint != healthy.fingerprint
        # the post-failure placement avoids the dead device entirely
        for cp in failed.placement.chains:
            assert all(a.device != "agilio0"
                       for a in cp.assignment.values())

        # repeating each scenario hits its own entry
        assert placer.solve(PlacementRequest(chains=chains)).cache_hit
        repeat = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("agilio0",)))
        assert repeat.cache_hit
        for cp in repeat.placement.chains:
            assert all(a.device != "agilio0"
                       for a in cp.assignment.values())


class TestGlobalCache:
    def test_scoped_cache_swaps_and_restores(self):
        outer = get_cache()
        with scoped_cache() as inner:
            assert get_cache() is inner
            assert inner is not outer
        assert get_cache() is outer

    def test_set_cache_installs(self):
        previous = get_cache()
        try:
            mine = PlacementCache()
            assert set_cache(mine) is mine
            assert get_cache() is mine
        finally:
            set_cache(previous)
