"""Chain-to-rack partitioner: routing, eligibility, determinism (§3/§6)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.partition import (
    chain_core_demand,
    fabric_routes,
    partition_chains,
)
from repro.exceptions import PartitionError
from repro.hw.spec import InterRackLinkSpec, RackSpec, TopologySpec, topology_for
from repro.profiles.defaults import default_profiles


def _chains(n, t_min=4000.0, t_max=9000.0, d_max=400.0):
    """Software-bound Encrypt chains (Encrypt cannot offload, so the core
    proxy bites): ~3 cores each at 4 Gbps, so six exhaust a paper rack."""
    spec = "\n".join(
        f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd" for i in range(n)
    )
    slos = [SLO(t_min=t_min, t_max=t_max, d_max=d_max) for _ in range(n)]
    return chains_from_spec(spec, slos=slos)


def _two_satellite_fabric(near_latency=10.0, far_latency=80.0,
                          near_capacity=40000.0):
    """A star with two satellites at different latencies (and optionally
    a throttled near link) so rack choice is observable."""
    return TopologySpec(
        racks=(RackSpec(name="r0"), RackSpec(name="far"),
               RackSpec(name="near")),
        links=(
            InterRackLinkSpec(a="r0", b="far", latency_us=far_latency),
            InterRackLinkSpec(a="r0", b="near", latency_us=near_latency,
                              capacity_mbps=near_capacity),
        ),
    ).build()


@pytest.fixture()
def profiles():
    return default_profiles()


class TestRouting:
    def test_star_routes(self):
        fabric = topology_for("two-rack").build()
        routes = fabric_routes(fabric)
        assert routes["r0"].links == ()
        assert routes["r0"].latency_us == 0.0
        assert routes["r1"].links == ("r0~r1",)
        assert routes["r1"].latency_us == 50.0
        assert routes["r1"].rtt_us == 100.0

    def test_multi_hop_latency_sums(self):
        fabric = TopologySpec(
            racks=(RackSpec(name="r0"), RackSpec(name="r1"),
                   RackSpec(name="r2")),
            links=(
                InterRackLinkSpec(a="r0", b="r1", latency_us=20.0,
                                  capacity_mbps=30000.0),
                InterRackLinkSpec(a="r1", b="r2", latency_us=30.0,
                                  capacity_mbps=20000.0),
            ),
        ).build()
        routes = fabric_routes(fabric)
        assert routes["r2"].links == ("r0~r1", "r1~r2")
        assert routes["r2"].latency_us == 50.0
        # bottleneck is the narrowest link along the path
        assert routes["r2"].bottleneck_mbps == 20000.0


class TestDemandProxy:
    def test_demand_scales_with_t_min(self, profiles):
        low, high = _chains(1, t_min=1000.0)[0], _chains(1, t_min=8000.0)[0]
        freq = 1.7e9
        assert chain_core_demand(high, freq, profiles) > \
            chain_core_demand(low, freq, profiles)

    def test_zero_rate_still_needs_one_core(self, profiles):
        (chain,) = chains_from_spec(
            "chain idle: ACL -> IPv4Fwd", slos=[SLO(t_min=0.0)]
        )
        assert chain_core_demand(chain, 1.7e9, profiles) == 1


class TestGreedyPartition:
    def test_all_fit_on_ingress(self, profiles):
        fabric = topology_for("two-rack").build()
        result = partition_chains(_chains(2), fabric, profiles)
        assert set(result.assignment.values()) == {"r0"}
        assert result.spills == 0
        assert result.remote_chains("r0") == {}

    def test_overflow_spills_off_ingress(self, profiles):
        fabric = topology_for("two-rack").build()
        result = partition_chains(_chains(6), fabric, profiles)
        assert set(result.assignment.values()) == {"r0", "r1"}
        assert result.spills >= 1
        remote = result.remote_chains("r0")
        assert remote
        for route in remote.values():
            assert route.rtt_us == 100.0
        # the spill is visible in the description
        assert "spills" in result.describe()

    def test_latency_driven_rack_choice(self, profiles):
        """When the ingress overflows, spills land on the lowest-latency
        satellite, not an arbitrary one."""
        fabric = _two_satellite_fabric()
        result = partition_chains(_chains(6), fabric, profiles)
        spilled = {c for c, r in result.assignment.items() if r != "r0"}
        assert spilled
        assert all(result.assignment[c] == "near" for c in spilled)

    def test_link_capacity_steers_around_narrow_link(self, profiles):
        """A near-but-narrow link loses to a far-but-wide one: the floor
        rate must fit on every link of the route."""
        fabric = _two_satellite_fabric(near_capacity=1000.0)  # < t_min
        result = partition_chains(_chains(6), fabric, profiles)
        spilled = {c for c, r in result.assignment.items() if r != "r0"}
        assert spilled
        assert all(result.assignment[c] == "far" for c in spilled)

    def test_latency_budget_excludes_remote_racks(self, profiles):
        """d_max below the fabric RTT makes every satellite ineligible;
        the error names both binding constraints."""
        fabric = topology_for("two-rack").build()
        with pytest.raises(PartitionError) as excinfo:
            partition_chains(_chains(6, d_max=90.0), fabric, profiles)
        message = str(excinfo.value)
        assert "cores exhausted" in message
        assert "latency budget exhausted" in message
        assert "inter-rack RTT" in message

    def test_capacity_infeasible_names_binding_constraint(self, profiles):
        """Both racks full: the error carries the per-rack core deficit."""
        fabric = topology_for("two-rack").build()
        with pytest.raises(PartitionError) as excinfo:
            partition_chains(_chains(12), fabric, profiles)
        message = str(excinfo.value)
        assert "no rack fits chain" in message
        assert message.count("cores exhausted") == 2
        assert "free" in message


class TestPins:
    def test_pin_to_unknown_rack_rejected(self, profiles):
        fabric = topology_for("two-rack").build()
        with pytest.raises(PartitionError, match="unknown rack"):
            partition_chains(_chains(1), fabric, profiles,
                             rack_pins={"c0": "r9"})

    def test_pin_is_honored(self, profiles):
        fabric = topology_for("two-rack").build()
        result = partition_chains(_chains(2), fabric, profiles,
                                  rack_pins={"c1": "r1"})
        assert result.assignment == {"c0": "r0", "c1": "r1"}
        assert result.spills == 1

    def test_infeasible_pin_names_link_constraint(self, profiles):
        fabric = TopologySpec(
            racks=(RackSpec(name="r0"), RackSpec(name="r1")),
            links=(InterRackLinkSpec(a="r0", b="r1",
                                     capacity_mbps=1000.0),),
        ).build()
        with pytest.raises(PartitionError) as excinfo:
            partition_chains(_chains(1), fabric, profiles,
                             rack_pins={"c0": "r1"})
        message = str(excinfo.value)
        assert "pinned chain" in message
        assert "capacity exhausted" in message


class TestDeterminism:
    @pytest.mark.parametrize("refine", [True, False])
    def test_repeated_partitions_identical(self, profiles, refine):
        fabric = topology_for("two-rack").build()
        first = partition_chains(_chains(6), fabric, profiles, refine=refine)
        second = partition_chains(_chains(6), fabric, profiles,
                                  refine=refine)
        assert first.assignment == second.assignment
        assert first.method == second.method
        assert first.core_demand == second.core_demand
        assert first.spills == second.spills

    def test_assignment_order_follows_chain_order(self, profiles):
        """The result dict is keyed in input-chain order regardless of
        the FFD solve order."""
        fabric = topology_for("two-rack").build()
        result = partition_chains(_chains(6), fabric, profiles)
        assert list(result.assignment) == [f"c{i}" for i in range(6)]
