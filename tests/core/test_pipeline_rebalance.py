"""Shared placement-pipeline tests: multi-server rebalancing, stage
verification, and the rescoring helper."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.patterns import preferred_assignment
from repro.core.pipeline import (
    build_placement,
    rebalance_servers,
    rescore_placement,
    verify_switch_fit,
)
from repro.core.heuristic import heuristic_place
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


class TestRebalance:
    def test_single_server_noop(self, profiles):
        topo = topology_for("paper-testbed").build()
        chains = chains_from_spec("chain a: ACL -> Encrypt -> IPv4Fwd")
        assignments = [preferred_assignment(chains[0], topo, "hw")]
        before = {nid: str(a) for nid, a in assignments[0].items()}
        out = rebalance_servers(chains, assignments, topo, profiles)
        after = {nid: str(a) for nid, a in out[0].items()}
        assert before == after

    def test_subgroups_spread_across_servers(self, profiles):
        topo = topology_for("multi-server").build()
        spec = ("chain a: ACL -> Encrypt -> IPv4Fwd\n"
                "chain b: BPF -> Dedup -> IPv4Fwd")
        chains = chains_from_spec(spec)
        assignments = [preferred_assignment(c, topo, "hw") for c in chains]
        out = rebalance_servers(chains, assignments, topo, profiles)
        servers = {
            a.device for assignment in out for a in assignment.values()
            if a.platform is Platform.SERVER
        }
        assert servers == {"server0", "server1"}

    def test_whole_subgroups_move_together(self, profiles):
        topo = topology_for("multi-server").build()
        chains = chains_from_spec("chain a: ACL -> Dedup -> Monitor "
                                  "-> IPv4Fwd")
        assignments = [preferred_assignment(chains[0], topo, "hw")]
        out = rebalance_servers(chains, assignments, topo, profiles)
        server_devices = {
            a.device for a in out[0].values()
            if a.platform is Platform.SERVER
        }
        # Dedup+Monitor form one subgroup: exactly one server hosts them
        assert len(server_devices) == 1


class TestVerifySwitchFit:
    def test_fit_returns_none(self, profiles):
        topo = topology_for("paper-testbed").build()
        chains = chains_from_spec("chain a: ACL -> Encrypt -> IPv4Fwd",
                                  slos=[SLO(t_min=100.0)])
        placement = build_placement(
            chains, [preferred_assignment(chains[0], topo, "hw")],
            topo, profiles,
        )
        assert verify_switch_fit(placement.chains, topo) is None

    def test_overflow_reports_stage_count(self, profiles):
        from repro.experiments.chains import nat_stress_chain
        topo = topology_for("paper-testbed").build()
        chain = nat_stress_chain(11).with_slo(SLO(t_min=100.0))
        placement = build_placement(
            [chain], [preferred_assignment(chain, topo, "hw")],
            topo, profiles, check_stages=False,
        )
        reason = verify_switch_fit(placement.chains, topo)
        assert reason is not None and "stages" in reason


class TestRescore:
    def test_identity_rescore_preserves_objective(self, profiles):
        topo = topology_for("paper-testbed").build()
        chains = chains_from_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(30))],
        )
        decided = heuristic_place(chains, topo, profiles)
        rescored = rescore_placement(decided, chains, topo, profiles)
        assert rescored.feasible
        assert rescored.objective_mbps == pytest.approx(
            decided.objective_mbps, rel=1e-6
        )

    def test_rescore_keeps_core_decisions(self, profiles):
        topo = topology_for("paper-testbed").build()
        chains = chains_from_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(5), t_max=gbps(30))],
        )
        decided = heuristic_place(chains, topo, profiles)
        slower = profiles.with_error(0.10)  # 10% costlier reality
        rescored = rescore_placement(decided, chains, topo, slower)
        decided_cores = {
            sg.sg_id: sg.cores
            for cp in decided.chains for sg in cp.subgroups
        }
        rescored_cores = {
            sg.sg_id: sg.cores
            for cp in rescored.chains for sg in cp.subgroups
        }
        assert decided_cores == rescored_cores

    def test_rescore_detects_slo_miss(self, profiles):
        topo = topology_for("paper-testbed").build()
        # Dedup+Limiter fuse into a non-replicable subgroup (~600 Mbps on
        # one core): a 40% cost increase cannot be absorbed by scaling.
        chains = chains_from_spec(
            "chain a: Dedup -> Limiter -> IPv4Fwd",
            slos=[SLO(t_min=550.0, t_max=gbps(30))],
        )
        decided = heuristic_place(chains, topo, profiles)
        much_slower = profiles.with_error(0.40)
        rescored = rescore_placement(decided, chains, topo, much_slower)
        assert not rescored.feasible
        assert "t_min" in rescored.infeasible_reason
