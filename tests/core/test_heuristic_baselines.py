"""Heuristic and baseline placement strategy tests (§3.2, §5.1)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.baselines import (
    greedy_place,
    hw_preferred_place,
    min_bounce_place,
    sw_preferred_place,
)
from repro.core.heuristic import heuristic_place
from repro.experiments.chains import chains_with_delta, nat_stress_chain, \
    base_rate_mbps
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


class TestHeuristic:
    def test_simple_chains_feasible(self, profiles, simple_chains):
        placement = heuristic_place(simple_chains, topology_for("paper-testbed").build(),
                                    profiles)
        assert placement.feasible
        assert placement.objective_mbps > 0
        for cp in placement.chains:
            assert placement.rates[cp.name] >= cp.chain.slo.t_min

    def test_hw_capable_nfs_prefer_switch(self, profiles, simple_chains):
        placement = heuristic_place(simple_chains, topology_for("paper-testbed").build(),
                                    profiles)
        for cp in placement.chains:
            for nid, assign in cp.assignment.items():
                node = cp.chain.graph.nodes[nid]
                if Platform.PISA in node.info.platforms:
                    assert assign.platform is Platform.PISA

    def test_stage_pressure_evicts_cheapest(self, profiles):
        """With 11 NATs the heuristic evicts NATs (cheap) off the switch
        until the pipeline fits, and stays feasible."""
        chain = nat_stress_chain(11)
        base = base_rate_mbps(chain, profiles)
        chains = [chain.with_slo(SLO(t_min=0.5 * base, t_max=gbps(100)))]
        placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible
        cp = placement.chains[0]
        on_switch = sum(
            1 for nid, a in cp.assignment.items()
            if a.platform is Platform.PISA
            and cp.chain.graph.nodes[nid].nf_class == "NAT"
        )
        assert on_switch == 10
        assert placement.switch_stages_used <= 12

    def test_infeasible_reports_reason(self, profiles):
        chains = chains_with_delta([1, 2, 3, 4], delta=4.0)
        placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        assert not placement.feasible
        assert placement.infeasible_reason

    def test_placement_respects_core_budget(self, profiles):
        chains = chains_with_delta([1, 2, 3], delta=1.0)
        placement = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible
        assert placement.total_cores()["server0"] <= 15


class TestHWPreferred:
    def test_everything_hardware_capable_on_switch(self, profiles,
                                                   simple_chains):
        placement = hw_preferred_place(simple_chains, topology_for("paper-testbed").build(),
                                       profiles)
        assert placement.feasible
        for cp in placement.chains:
            for nid, assign in cp.assignment.items():
                node = cp.chain.graph.nodes[nid]
                if Platform.PISA in node.info.platforms:
                    assert assign.platform is Platform.PISA

    def test_rate_independent_of_delta(self, profiles):
        """Paper: 'HW Preferred delivers the same rate regardless of δ'."""
        rates = []
        for delta in (0.5, 1.0):
            chains = chains_with_delta([1, 2, 3], delta=delta)
            placement = hw_preferred_place(chains, topology_for("paper-testbed").build(),
                                           profiles)
            assert placement.feasible
            rates.append(round(placement.aggregate_rate))
        assert rates[0] == rates[1]


class TestSWPreferred:
    def test_software_nfs_on_server(self, profiles, simple_chains):
        placement = sw_preferred_place(simple_chains, topology_for("paper-testbed").build(),
                                       profiles)
        for cp in placement.chains:
            for nid, assign in cp.assignment.items():
                node = cp.chain.graph.nodes[nid]
                if Platform.SERVER in node.info.platforms:
                    assert assign.platform is Platform.SERVER
                else:  # IPv4Fwd has no software implementation
                    assert assign.platform is Platform.PISA

    def test_fails_to_scale_stateful_chains(self, profiles):
        """Paper: SW Preferred puts whole chains in one subgroup; with a
        non-replicable member, SLOs fail at modest δ."""
        chains = chains_with_delta([3], delta=1.0)
        placement = sw_preferred_place(chains, topology_for("paper-testbed").build(), profiles)
        assert not placement.feasible


class TestMinBounce:
    def test_minimizes_bounces(self, profiles):
        chains = chains_from_spec(
            "chain c: Dedup -> ACL -> Limiter -> IPv4Fwd",
            slos=[SLO(t_min=100.0)],
        )
        placement = min_bounce_place(chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible
        assert placement.chains[0].bounces == 1
        # ACL stays on the server (moving it to P4 would add a bounce)
        cp = placement.chains[0]
        acl = next(nid for nid, n in cp.chain.graph.nodes.items()
                   if n.nf_class == "ACL")
        assert cp.assignment[acl].platform is Platform.SERVER

    def test_fails_where_lemur_survives(self, profiles):
        """The §3.2 narrative: refusing a bounce fuses a non-replicable
        subgroup, so Min Bounce dies at a δ Lemur handles."""
        chains = chains_with_delta([3], delta=1.5)
        minb = min_bounce_place(chains, topology_for("paper-testbed").build(), profiles)
        lemur = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
        assert not minb.feasible
        assert lemur.feasible


class TestGreedy:
    def test_feasible_and_slo_aware(self, profiles):
        chains = chains_with_delta([1, 2, 3], delta=1.0)
        placement = greedy_place(chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible
        for cp in placement.chains:
            assert placement.rates[cp.name] >= cp.chain.slo.t_min

    def test_lemur_dominates_all_baselines(self, profiles):
        """Whenever a baseline is feasible, Lemur is feasible with at
        least the same marginal throughput."""
        for delta in (0.5, 1.0, 1.5):
            chains = chains_with_delta([1, 2, 3], delta=delta)
            lemur = heuristic_place(chains, topology_for("paper-testbed").build(), profiles)
            for baseline in (hw_preferred_place, sw_preferred_place,
                             min_bounce_place, greedy_place):
                other = baseline(chains, topology_for("paper-testbed").build(), profiles)
                if other.feasible:
                    assert lemur.feasible
                    assert lemur.objective_mbps >= \
                        other.objective_mbps - 1e-6
