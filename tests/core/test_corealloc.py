"""Core allocation policy tests (§3.2)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.corealloc import (
    allocate_cores,
    allocate_exhaustive,
    allocate_minimum,
    meet_tmin,
)
from repro.core.placement import NodeAssignment
from repro.core.rates import analyze_chain
from repro.core.subgroups import form_subgroups
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


def build_cp(spec, slo, profiles, topo, server_nfs):
    chain = chains_from_spec(spec, slos=[slo])[0]
    assignment = {}
    for nid, node in chain.graph.nodes.items():
        platform = (Platform.SERVER if node.nf_class in server_nfs
                    else Platform.PISA)
        device = "server0" if platform is Platform.SERVER else "tofino0"
        assignment[nid] = NodeAssignment(platform, device)
    subgroups = form_subgroups(chain, assignment, profiles)
    return analyze_chain(chain, assignment, subgroups, topo, profiles)


class TestMinimum:
    def test_one_core_each(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                      SLO(t_min=100), profiles, topo, {"Encrypt", "Dedup"})
        result = allocate_minimum([cp], topo)
        assert result.feasible
        assert all(sg.cores == 1 for sg in cp.subgroups)

    def test_too_many_subgroups_infeasible(self, profiles):
        topo = topology_for("paper-testbed").build()
        cps = [
            build_cp(f"chain c{i}: Encrypt -> ACL -> Dedup -> IPv4Fwd",
                     SLO(t_min=10), profiles, topo, {"Encrypt", "Dedup"})
            for i in range(9)  # 18 subgroups > 15 cores
        ]
        result = allocate_minimum(cps, topo)
        assert not result.feasible
        assert "deficit" in result.reason


class TestMeetTmin:
    def test_scales_bottleneck(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=5000, t_max=gbps(100)),
                      profiles, topo, {"Encrypt"})
        allocate_minimum([cp], topo)
        result = meet_tmin([cp], topo)
        assert result.feasible
        assert cp.estimated_rate >= 5000
        (sg,) = cp.subgroups
        assert sg.cores >= 3

    def test_non_replicable_cannot_scale(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: ACL -> Dedup -> Limiter -> IPv4Fwd",
                      SLO(t_min=gbps(2)), profiles, topo,
                      {"Dedup", "Limiter"})
        allocate_minimum([cp], topo)
        result = meet_tmin([cp], topo)
        assert not result.feasible
        assert "stuck" in result.reason


class TestPolicies:
    def test_none_policy_keeps_one_core(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=100, t_max=gbps(100)),
                      profiles, topo, {"Encrypt"})
        result = allocate_cores([cp], topo, policy="none")
        assert result.feasible
        assert all(sg.cores == 1 for sg in cp.subgroups)

    def test_none_policy_fails_on_high_tmin(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=5000), profiles, topo, {"Encrypt"})
        result = allocate_cores([cp], topo, policy="none")
        assert not result.feasible

    def test_lemur_policy_spends_all_useful_cores(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=1000, t_max=gbps(100)),
                      profiles, topo, {"Encrypt"})
        result = allocate_cores([cp], topo, policy="lemur")
        assert result.feasible
        (sg,) = cp.subgroups
        assert sg.cores == 15  # only chain: grab everything useful

    def test_lemur_prefers_higher_gain(self, profiles):
        topo = topology_for("paper-testbed").build()
        fast = build_cp("chain fast: ACL -> Encrypt -> IPv4Fwd",
                        SLO(t_min=100, t_max=gbps(100)),
                        profiles, topo, {"Encrypt"})
        slow = build_cp("chain slow: ACL -> Dedup -> IPv4Fwd",
                        SLO(t_min=100, t_max=gbps(100)),
                        profiles, topo, {"Dedup"})
        allocate_cores([fast, slow], topo, policy="lemur")
        fast_cores = fast.subgroups[0].cores
        slow_cores = slow.subgroups[0].cores
        # Encrypt has ~4x the per-core rate of Dedup: greedy marginal gain
        # should favour it
        assert fast_cores > slow_cores

    def test_by_index_pumps_first_chain(self, profiles):
        topo = topology_for("paper-testbed").build()
        first = build_cp("chain a: ACL -> Encrypt -> IPv4Fwd",
                         SLO(t_min=100, t_max=gbps(100)),
                         profiles, topo, {"Encrypt"})
        second = build_cp("chain b: ACL -> Encrypt -> IPv4Fwd",
                          SLO(t_min=100, t_max=gbps(100)),
                          profiles, topo, {"Encrypt"})
        allocate_cores([first, second], topo, policy="by_index")
        assert first.subgroups[0].cores >= second.subgroups[0].cores

    def test_even_policy_balances(self, profiles):
        topo = topology_for("paper-testbed").build()
        cps = [
            build_cp(f"chain c{i}: ACL -> Encrypt -> IPv4Fwd",
                     SLO(t_min=100, t_max=gbps(100)),
                     profiles, topo, {"Encrypt"})
            for i in range(3)
        ]
        allocate_cores(cps, topo, policy="even")
        cores = sorted(cp.subgroups[0].cores for cp in cps)
        assert cores[-1] - cores[0] <= 1

    def test_unknown_policy(self, profiles):
        topo = topology_for("paper-testbed").build()
        cp = build_cp("chain c: ACL -> Encrypt -> IPv4Fwd",
                      SLO(t_min=100), profiles, topo, {"Encrypt"})
        from repro.exceptions import PlacementError
        with pytest.raises(PlacementError):
            allocate_cores([cp], topo, policy="nope")


class TestExhaustiveOracle:
    def test_greedy_matches_exhaustive_small(self, profiles):
        """The greedy water-fill should equal the exhaustive optimum on a
        small instance (chain rate is concave in cores)."""
        from repro.core.lp import solve_rates
        from repro.hw.server import Server, CPUSocket, NIC
        from repro.hw.pisa import PISASwitch
        from repro.hw.topology import Topology

        server = Server(name="server0",
                        sockets=[CPUSocket(0, cores=5, freq_hz=1.7e9)],
                        nics=[NIC()], reserved_cores=1)
        topo = Topology(switch=PISASwitch(), servers=[server])

        def fresh():
            return [
                build_cp("chain a: ACL -> Encrypt -> IPv4Fwd",
                         SLO(t_min=100, t_max=gbps(100)),
                         profiles, topo, {"Encrypt"}),
                build_cp("chain b: ACL -> Dedup -> IPv4Fwd",
                         SLO(t_min=100, t_max=gbps(100)),
                         profiles, topo, {"Dedup"}),
            ]

        greedy_cps = fresh()
        result = allocate_cores(greedy_cps, topo, policy="lemur")
        assert result.feasible
        greedy_obj = solve_rates(greedy_cps, topo).objective_mbps

        exhaustive_cps = fresh()
        _alloc, solution = allocate_exhaustive(exhaustive_cps, topo)
        assert solution.feasible
        assert greedy_obj == pytest.approx(solution.objective_mbps,
                                           rel=1e-6)
