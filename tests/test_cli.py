"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "chains.lemur"
    path.write_text(
        "chain a: ACL -> Encrypt -> IPv4Fwd\n"
        "chain b: BPF -> NAT -> IPv4Fwd\n"
    )
    return str(path)


class TestPlace:
    def test_basic(self, spec_file, capsys):
        code = main(["place", spec_file, "--tmin", "1", "1",
                     "--tmax", "30", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "feasible=True" in out
        assert "pisa:tofino0" in out

    def test_infeasible_exit_code(self, spec_file, capsys):
        code = main(["place", spec_file, "--tmin", "90", "90"])
        assert code == 2

    def test_fair_flag(self, spec_file, capsys):
        code = main(["place", spec_file, "--tmin", "1", "1",
                     "--tmax", "100", "100", "--fair"])
        assert code == 0

    def test_reserve(self, spec_file, capsys):
        code = main(["place", spec_file, "--reserve", "4"])
        assert code == 0

    def test_strategy_selection(self, spec_file, capsys):
        code = main(["place", spec_file, "--strategy", "hw-preferred"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hw-preferred" in out

    def test_missing_file(self, capsys):
        code = main(["place", "/does/not/exist.lemur"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_multi_server_topology(self, spec_file, capsys):
        code = main(["place", spec_file, "--servers", "2"])
        assert code == 0


class TestCompile:
    def test_dump_p4(self, spec_file, capsys):
        code = main(["compile", spec_file, "--dump", "p4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "control ingress" in out

    def test_dump_bess(self, spec_file, capsys):
        code = main(["compile", spec_file, "--dump", "bess"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SubgroupDemux" in out

    def test_dump_paths(self, spec_file, capsys):
        code = main(["compile", spec_file, "--dump", "paths"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spi=" in out

    def test_stats_line(self, spec_file, capsys):
        code = main(["compile", spec_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "auto-generated" in out

    def test_out_directory(self, spec_file, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        code = main(["compile", spec_file, "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / "p4" / "unified.p4").is_file()
        assert (out_dir / "routing" / "paths.txt").is_file()
        assert "artifact file(s)" in capsys.readouterr().out


class TestTrace:
    def test_packets_delivered(self, spec_file, capsys):
        code = main(["trace", spec_file, "--packets", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 delivered" in out


class TestStats:
    def test_text_report_sections(self, spec_file, capsys):
        code = main(["stats", spec_file, "--packets", "4",
                     "--tmin", "1", "1", "--tmax", "30", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "== chains ==" in out
        assert "== devices ==" in out
        assert "== metrics ==" in out
        assert "4/4 delivered" in out
        assert "placer.stage.seconds" in out
        assert "lp.solves" in out

    def test_json_document(self, spec_file, capsys):
        import json

        code = main(["stats", spec_file, "--packets", "4", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert set(doc) == {
            "placer_wall_clock_ms", "chains", "devices", "metrics",
        }
        chain = doc["chains"]["a"]
        assert chain["delivered"] == 4
        assert chain["latency_breakdown_us"]["exec_us"] >= 0
        assert chain["avg_latency_us"] == pytest.approx(
            sum(chain["latency_breakdown_us"].values())
        )
        assert doc["devices"]["server0"]["packets_in"] > 0
        names = {c["name"] for c in doc["metrics"]["counters"]}
        assert "lp.solves" in names
        assert "rack.packets.delivered" in names


class TestSweepProfile:
    def test_sweep(self, capsys):
        code = main(["sweep", "2", "--deltas", "0.5", "--no-measure"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lemur" in out

    def test_profile(self, capsys):
        code = main(["profile", "--runs", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NAT (12000 entries)" in out


class TestTrafficCLI:
    def test_ok_run_exit_zero(self, spec_file, capsys):
        code = main(["traffic", spec_file, "--tmin", "1", "1",
                     "--packets", "64", "--flows", "8", "--batch", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "t_min" in out and "slo" in out
        assert "VIOLATED" not in out

    def test_infeasible_exit_two(self, spec_file, capsys):
        code = main(["traffic", spec_file, "--tmin", "90", "90",
                     "--packets", "64", "--flows", "8", "--batch", "8"])
        err = capsys.readouterr().err
        assert code == 2
        assert "infeasible" in err

    def test_json_document(self, spec_file, capsys):
        import json

        code = main(["traffic", spec_file, "--tmin", "1", "1",
                     "--packets", "64", "--flows", "8", "--batch", "8",
                     "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["ok"] is True
        assert {c["chain"] for c in doc["chains"]} == {"a", "b"}
        assert all(c["slo_met"] for c in doc["chains"])

    def test_out_file(self, spec_file, capsys, tmp_path):
        out = tmp_path / "report.json"
        code = main(["traffic", spec_file, "--tmin", "1", "1",
                     "--packets", "64", "--flows", "8", "--batch", "8",
                     "--out", str(out)])
        import json

        assert code == 0
        assert json.loads(out.read_text())["ok"] is True


class TestExitCodes:
    """The documented contract: 0 ok, 2 SLO non-compliance, 1 errors."""

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        assert "exit codes" in capsys.readouterr().out

    def test_usage_error_exits_one(self, capsys):
        assert main(["warp-speed"]) == 1

    def test_missing_argument_exits_one(self, capsys):
        assert main(["traffic"]) == 1

    def test_slo_violation_exits_two(self, capsys):
        from repro.cli_report import emit_report
        from repro.sim.traffic import ChainTrafficReport, TrafficReport

        violated = TrafficReport(chains=[ChainTrafficReport(
            chain_name="a", flows=1, injected=10, delivered=5, dropped=5,
            wall_seconds=0.1, assigned_mbps=100.0, t_min_mbps=100.0,
        )])
        assert not violated.ok
        assert emit_report(violated) == 2
        assert "VIOLATED" in capsys.readouterr().out
