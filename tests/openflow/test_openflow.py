"""OpenFlow substrate tests: rules, fixed pipeline, VLAN SPI/SI encoding."""

import pytest

from repro.exceptions import OpenFlowError
from repro.hw.openflow import OpenFlowSwitchModel
from repro.net.packet import Packet
from repro.openflow.switch import OpenFlowRuntime, decode_vid, encode_vid
from repro.openflow.tables import FlowRule, FlowTable


class TestVidEncoding:
    def test_roundtrip(self):
        for spi in (0, 1, 63):
            for si in (0, 42, 63):
                assert decode_vid(encode_vid(spi, si)) == (spi, si)

    def test_spi_overflow_rejected(self):
        with pytest.raises(OpenFlowError):
            encode_vid(64, 0)

    def test_si_overflow_rejected(self):
        with pytest.raises(OpenFlowError):
            encode_vid(0, 64)

    def test_decode_bounds(self):
        with pytest.raises(OpenFlowError):
            decode_vid(4096)


class TestFlowRules:
    def test_vlan_match(self):
        rule = FlowRule(match={"vlan_vid": 10}, actions=[("count",)])
        assert rule.matches(Packet.build(vlan=10))
        assert not rule.matches(Packet.build(vlan=11))
        assert not rule.matches(Packet.build())

    def test_ip_prefix_match(self):
        rule = FlowRule(match={"dst_ip": "10.0.0.0/8"})
        assert rule.matches(Packet.build(dst_ip="10.1.2.3"))
        assert not rule.matches(Packet.build(dst_ip="192.168.0.1"))

    def test_priority_ordering(self):
        table = FlowTable(table_id=0, name="t")
        low = FlowRule(priority=10, match={}, actions=[("count",)])
        high = FlowRule(priority=100, match={}, actions=[("drop",)])
        table.add(low)
        table.add(high)
        assert table.lookup(Packet.build()) is high

    def test_capacity_enforced(self):
        table = FlowTable(table_id=0, name="t", max_rules=1)
        table.add(FlowRule())
        with pytest.raises(OpenFlowError):
            table.add(FlowRule())

    def test_counters(self):
        table = FlowTable(table_id=0, name="t")
        rule = FlowRule(match={})
        table.add(rule)
        table.lookup(Packet.build(total_bytes=100))
        assert rule.packets == 1
        assert rule.bytes == 100

    def test_render(self):
        rule = FlowRule(priority=50, match={"vlan_vid": 3},
                        actions=[("output", 2)])
        text = rule.render(table_id=1)
        assert "table=1" in text and "vlan_vid=3" in text


class TestRuntime:
    def _runtime(self):
        return OpenFlowRuntime(OpenFlowSwitchModel())

    def test_drop_action(self):
        rt = self._runtime()
        rt.install(1, FlowRule(match={"dst_ip": "192.0.2.0/24"},
                               actions=[("drop",)]))
        result = rt.process(Packet.build(dst_ip="192.0.2.5"))
        assert result.dropped
        assert rt.drops == 1

    def test_output_action_stops_pipeline(self):
        rt = self._runtime()
        rt.install(0, FlowRule(match={}, actions=[("output", 7)]))
        rt.install(1, FlowRule(match={}, actions=[("drop",)]))
        result = rt.process(Packet.build())
        assert result.output_port == 7
        assert not result.dropped

    def test_vlan_rewrite_chain(self):
        rt = self._runtime()
        rt.install(0, FlowRule(match={"vlan_vid": 5},
                               actions=[("set_vlan", 9), ("output", 1)]))
        result = rt.process(Packet.build(vlan=5))
        assert result.packet.vlan.vid == 9

    def test_push_pop_vlan_actions(self):
        rt = self._runtime()
        rt.install(0, FlowRule(match={}, actions=[("push_vlan", 77)]))
        result = rt.process(Packet.build())
        assert result.packet.vlan.vid == 77

    def test_goto_must_move_forward(self):
        rt = self._runtime()
        rt.install(1, FlowRule(match={}, actions=[("goto", 0)]))
        with pytest.raises(OpenFlowError):
            rt.process(Packet.build())

    def test_goto_skips_tables(self):
        rt = self._runtime()
        rt.install(0, FlowRule(match={}, actions=[("goto", 2)]))
        skipped = FlowRule(match={}, actions=[("drop",)])
        rt.install(1, skipped)
        result = rt.process(Packet.build())
        assert not result.dropped
        assert skipped.packets == 0

    def test_no_match_passes_through(self):
        rt = self._runtime()
        result = rt.process(Packet.build())
        assert not result.dropped
        assert result.output_port is None
