"""Shared fixtures for the Lemur reproduction test suite."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


@pytest.fixture()
def testbed():
    return topology_for("paper-testbed").build()


@pytest.fixture()
def simple_chains():
    """Two small linear chains with modest SLOs."""
    spec = """
    chain alpha: ACL -> Encrypt -> IPv4Fwd
    chain beta: BPF -> NAT -> IPv4Fwd
    """
    return chains_from_spec(
        spec,
        slos=[SLO(t_min=gbps(1), t_max=gbps(50)),
              SLO(t_min=gbps(1), t_max=gbps(50))],
    )


@pytest.fixture()
def branched_chain():
    """A chain with a conditional branch and a merge."""
    spec = (
        "chain branchy: BPF -> "
        "[ACL -> Encrypt @ 0.5, default: Monitor] -> IPv4Fwd"
    )
    return chains_from_spec(spec, slos=[SLO(t_min=gbps(0.5))])[0]
