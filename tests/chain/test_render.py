"""Spec renderer tests, including parse→render→parse round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.graph import chains_from_spec
from repro.chain.render import render_chain, render_graph, render_spec


def roundtrip(spec):
    """parse -> render -> parse; returns (original, reparsed) graphs."""
    original = chains_from_spec(spec)[0]
    rendered = render_chain(original)
    reparsed = chains_from_spec(rendered)[0]
    return original, reparsed


def structure(graph):
    """Comparable structural fingerprint of a graph."""
    order = graph.topological_order()
    index = {nid: i for i, nid in enumerate(order)}
    nodes = [(i, graph.nodes[nid].nf_class, tuple(sorted(
        graph.nodes[nid].params.items(), key=str
    ))) for nid, i in sorted(index.items(), key=lambda kv: kv[1])]
    edges = sorted(
        (index[e.src], index[e.dst], round(e.fraction, 6)) for e in graph.edges
    )
    return nodes, edges


class TestRenderLinear:
    def test_simple_chain(self):
        original, reparsed = roundtrip("chain c: ACL -> Encrypt -> IPv4Fwd")
        assert structure(original.graph) == structure(reparsed.graph)

    def test_params_preserved(self):
        spec = ("chain c: ACL(rules=[{'dst_ip': '10.0.0.0/8', "
                "'drop': False}]) -> IPv4Fwd")
        original, reparsed = roundtrip(spec)
        acl = next(n for n in reparsed.graph.nodes.values()
                   if n.nf_class == "ACL")
        assert acl.params["rules"] == [{"dst_ip": "10.0.0.0/8",
                                        "drop": False}]

    def test_numeric_and_bool_params(self):
        spec = "chain c: Tunnel(vid=42) -> LB(backends=4) -> IPv4Fwd"
        original, reparsed = roundtrip(spec)
        assert structure(original.graph) == structure(reparsed.graph)


class TestRenderBranches:
    def test_unconditional_branch(self):
        original, reparsed = roundtrip(
            "chain c: BPF -> [Encrypt, Monitor] -> IPv4Fwd"
        )
        assert structure(original.graph) == structure(reparsed.graph)

    def test_weighted_branch(self):
        original, reparsed = roundtrip(
            "chain c: BPF -> [Encrypt @ 0.75, Monitor @ 0.25] -> IPv4Fwd"
        )
        assert structure(original.graph) == structure(reparsed.graph)

    def test_conditional_branch(self):
        original, reparsed = roundtrip(
            "chain c: ACL -> [{'vlan_tag': 0x1}: Encrypt, default: pass]"
            " -> IPv4Fwd"
        )
        assert structure(original.graph) == structure(reparsed.graph)

    def test_multi_nf_arms(self):
        original, reparsed = roundtrip(
            "chain c: BPF -> [ACL -> Encrypt, Monitor -> Limiter]"
            " -> IPv4Fwd"
        )
        assert structure(original.graph) == structure(reparsed.graph)


class TestRenderSpec:
    def test_multiple_chains(self):
        chains = chains_from_spec(
            "chain a: ACL -> IPv4Fwd\nchain b: BPF -> NAT -> IPv4Fwd"
        )
        text = render_spec(chains)
        reparsed = chains_from_spec(text)
        assert [c.name for c in reparsed] == ["a", "b"]


SERVER_NFS = st.sampled_from(
    ["ACL", "Encrypt", "Monitor", "BPF", "Dedup", "UrlFilter", "LB"]
)


@settings(max_examples=40, deadline=None)
@given(
    backbone=st.lists(SERVER_NFS, min_size=1, max_size=4),
    arms=st.lists(st.lists(SERVER_NFS, min_size=1, max_size=2),
                  min_size=0, max_size=3),
)
def test_roundtrip_property(backbone, arms):
    """Any generated backbone + optional branch block round-trips."""
    expr = " -> ".join(backbone)
    if len(arms) >= 2:
        arm_exprs = [" -> ".join(arm) for arm in arms]
        expr += " -> [" + ", ".join(arm_exprs) + "] -> IPv4Fwd"
    else:
        expr += " -> IPv4Fwd"
    spec = f"chain prop: {expr}"
    original, reparsed = roundtrip(spec)
    assert structure(original.graph) == structure(reparsed.graph)
