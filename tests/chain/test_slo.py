"""SLO model tests (Table 1)."""

import math

import pytest

from repro.chain.slo import (
    SLO,
    SLOUseCase,
    bulk,
    classify_slo,
    elastic_pipe,
    infinite_pipe,
    metered_bulk,
    virtual_pipe,
)
from repro.units import gbps


class TestTable1UseCases:
    """Every row of Table 1 classifies correctly."""

    def test_bulk(self):
        assert bulk().use_case is SLOUseCase.BULK

    def test_metered_bulk(self):
        assert metered_bulk(gbps(1)).use_case is SLOUseCase.METERED_BULK

    def test_virtual_pipe(self):
        assert virtual_pipe(gbps(2)).use_case is SLOUseCase.VIRTUAL_PIPE

    def test_elastic_pipe(self):
        slo = elastic_pipe(gbps(1), gbps(5))
        assert slo.use_case is SLOUseCase.ELASTIC_PIPE

    def test_infinite_pipe(self):
        assert infinite_pipe(gbps(1)).use_case is SLOUseCase.INFINITE_PIPE

    def test_classify_matches_property(self):
        for slo in (bulk(), metered_bulk(5), virtual_pipe(5),
                    elastic_pipe(5, 9), infinite_pipe(5)):
            assert classify_slo(slo) is slo.use_case


class TestValidation:
    def test_negative_tmin_rejected(self):
        with pytest.raises(ValueError):
            SLO(t_min=-1)

    def test_tmax_below_tmin_rejected(self):
        with pytest.raises(ValueError):
            SLO(t_min=10, t_max=5)

    def test_nonpositive_dmax_rejected(self):
        with pytest.raises(ValueError):
            SLO(d_max=0)


class TestSatisfaction:
    def test_rate_only(self):
        slo = SLO(t_min=1000)
        assert slo.satisfied_by(1000.0)
        assert not slo.satisfied_by(999.0)

    def test_with_delay(self):
        slo = SLO(t_min=100, d_max=50.0)
        assert slo.satisfied_by(200, delay_us=49.0)
        assert not slo.satisfied_by(200, delay_us=51.0)

    def test_unbounded_delay_never_violates(self):
        assert SLO(t_min=0).satisfied_by(0, delay_us=1e9)

    def test_marginal(self):
        slo = SLO(t_min=1000)
        assert slo.marginal(1500) == 500
        assert slo.marginal(500) == 0


class TestWithTmin:
    def test_delta_scaling(self):
        slo = SLO(t_min=100, t_max=gbps(100), d_max=45.0)
        scaled = slo.with_tmin(4000)
        assert scaled.t_min == 4000
        assert scaled.d_max == 45.0
        assert scaled.t_max == gbps(100)

    def test_tmax_raised_when_needed(self):
        slo = SLO(t_min=100, t_max=200)
        scaled = slo.with_tmin(500)
        assert scaled.t_max >= scaled.t_min
