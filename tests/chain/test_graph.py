"""NF-graph IR tests: lowering, structure queries, linearization."""

import pytest

from repro.chain.graph import NFGraph, chains_from_spec
from repro.chain.parser import parse_spec
from repro.exceptions import GraphError, VocabularyError


def graph_of(spec, index=0):
    return chains_from_spec(spec)[index].graph


class TestLowering:
    def test_linear(self):
        graph = graph_of("ACL -> Encrypt -> IPv4Fwd")
        assert len(graph) == 3
        assert len(graph.edges) == 2
        assert graph.nf_multiset() == ["ACL", "Encrypt", "IPv4Fwd"]

    def test_unknown_nf_rejected(self):
        with pytest.raises(VocabularyError):
            graph_of("ACL -> Bogus -> IPv4Fwd")

    def test_alias_resolution(self):
        graph = graph_of("ACL -> Encryption -> Forward")
        assert graph.nf_multiset() == ["ACL", "Encrypt", "IPv4Fwd"]

    def test_branch_and_merge(self):
        graph = graph_of("BPF -> [ACL, Monitor] -> IPv4Fwd")
        assert len(graph) == 4
        assert len(graph.branch_nodes()) == 1
        assert len(graph.merge_nodes()) == 1

    def test_passthrough_arm_edge(self):
        graph = graph_of("BPF -> [ACL, default: pass] -> IPv4Fwd")
        # BPF->ACL, ACL->Fwd, BPF->Fwd (passthrough)
        assert len(graph.edges) == 3

    def test_chain_cannot_start_with_branch(self):
        ast = parse_spec("[ACL, Monitor] -> IPv4Fwd")
        with pytest.raises(GraphError):
            NFGraph.from_pipeline(ast.pipelines[0], name="bad")


class TestStructure:
    def test_entry_exit(self):
        graph = graph_of("ACL -> Encrypt -> IPv4Fwd")
        assert len(graph.entry_nodes()) == 1
        assert len(graph.exit_nodes()) == 1

    def test_topological_order_linear(self):
        graph = graph_of("ACL -> Encrypt -> IPv4Fwd")
        order = graph.topological_order()
        assert [graph.nodes[n].nf_class for n in order] == \
            ["ACL", "Encrypt", "IPv4Fwd"]

    def test_is_branch_or_merge(self):
        graph = graph_of("BPF -> [ACL, Monitor] -> IPv4Fwd")
        (entry,) = graph.entry_nodes()
        (exit_node,) = graph.exit_nodes()
        assert graph.is_branch_or_merge(entry)
        assert graph.is_branch_or_merge(exit_node)
        for nid in graph.nodes:
            if nid not in (entry, exit_node):
                assert not graph.is_branch_or_merge(nid)


class TestFractionsAndLinearization:
    def test_node_fractions_equal_split(self):
        graph = graph_of("BPF -> [ACL, Monitor] -> IPv4Fwd")
        fractions = graph.node_fractions()
        values = sorted(fractions.values())
        assert values == pytest.approx([0.5, 0.5, 1.0, 1.0])

    def test_explicit_weights(self):
        graph = graph_of("BPF -> [ACL @ 0.8, Monitor @ 0.2] -> IPv4Fwd")
        fractions = graph.node_fractions()
        acl = next(n for n in graph.nodes.values() if n.nf_class == "ACL")
        assert fractions[acl.node_id] == pytest.approx(0.8)

    def test_merge_fraction_sums_to_one(self):
        graph = graph_of("BPF -> [ACL, Monitor, Tunnel] -> IPv4Fwd")
        fractions = graph.node_fractions()
        (exit_node,) = graph.exit_nodes()
        assert fractions[exit_node] == pytest.approx(1.0)

    def test_linearize_counts_paths(self):
        graph = graph_of("BPF -> [ACL, Monitor, Tunnel] -> IPv4Fwd")
        paths = graph.linearize()
        assert len(paths) == 3
        assert sum(p.fraction for p in paths) == pytest.approx(1.0)
        for path in paths:
            assert len(path.node_ids) == 3

    def test_linearize_linear_chain(self):
        graph = graph_of("ACL -> Encrypt -> IPv4Fwd")
        paths = graph.linearize()
        assert len(paths) == 1
        assert paths[0].fraction == 1.0


class TestChainsFromSpec:
    def test_default_slo_is_bulk(self):
        chains = chains_from_spec("ACL -> IPv4Fwd")
        assert chains[0].slo.t_min == 0.0

    def test_slo_pairing(self):
        from repro.chain.slo import SLO
        chains = chains_from_spec(
            "ACL -> IPv4Fwd\nBPF -> IPv4Fwd",
            slos=[SLO(t_min=100.0), SLO(t_min=200.0)],
        )
        assert chains[0].slo.t_min == 100.0
        assert chains[1].slo.t_min == 200.0

    def test_auto_names(self):
        chains = chains_from_spec("ACL -> IPv4Fwd\nchain z: BPF -> IPv4Fwd")
        assert chains[0].name == "chain1"
        assert chains[1].name == "z"
