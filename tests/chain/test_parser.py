"""Parser tests: DSL → AST."""

import pytest

from repro.chain.ast import BranchSpec, NFInvocation
from repro.chain.parser import parse_spec
from repro.exceptions import SpecSyntaxError


class TestPipelines:
    def test_linear_chain(self):
        ast = parse_spec("ACL -> Encrypt -> IPv4Fwd")
        assert len(ast.pipelines) == 1
        names = [item.nf_class for item in ast.pipelines[0].items]
        assert names == ["ACL", "Encrypt", "IPv4Fwd"]

    def test_named_chain(self):
        ast = parse_spec("chain c9: ACL -> IPv4Fwd")
        assert ast.pipeline_names == ["c9"]

    def test_multiple_pipelines(self):
        ast = parse_spec("ACL -> IPv4Fwd\nBPF -> NAT")
        assert len(ast.pipelines) == 2

    def test_nf_params(self):
        ast = parse_spec("ACL(rules=[{'dst_ip': '10.0.0.0/8', "
                         "'drop': False}]) -> IPv4Fwd")
        acl = ast.pipelines[0].items[0]
        assert acl.params["rules"] == [{"dst_ip": "10.0.0.0/8",
                                        "drop": False}]


class TestInstances:
    def test_instance_declaration(self):
        ast = parse_spec("acl0 = ACL(rules=[])\nacl0 -> IPv4Fwd")
        first = ast.pipelines[0].items[0]
        assert first.nf_class == "ACL"
        assert first.instance_name == "acl0"

    def test_duplicate_instance_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("a = ACL()\na = NAT()")

    def test_instance_use_with_params_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("a = ACL()\na(rules=[]) -> IPv4Fwd")


class TestMacros:
    def test_macro_substitution(self):
        ast = parse_spec("$R = [{'drop': True}]\nACL(rules=$R) -> IPv4Fwd")
        assert ast.pipelines[0].items[0].params["rules"] == [{"drop": True}]

    def test_undefined_macro(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("ACL(rules=$NOPE) -> IPv4Fwd")


class TestBranches:
    def test_paper_style_branch(self):
        ast = parse_spec("ACL -> [{'vlan_tag': 0x1, Encrypt}] -> IPv4Fwd")
        branch = ast.pipelines[0].items[1]
        assert isinstance(branch, BranchSpec)
        # conditional arm + implicit passthrough default
        assert len(branch.arms) == 2
        assert branch.arms[0].condition == {"vlan_tag": 1}
        assert branch.arms[0].pipeline.items[0].nf_class == "Encrypt"
        assert branch.arms[1].condition is None
        assert branch.arms[1].pipeline.items == []

    def test_default_arm(self):
        ast = parse_spec(
            "BPF -> [{'dst_port': 80}: UrlFilter, default: pass] -> IPv4Fwd"
        )
        branch = ast.pipelines[0].items[1]
        assert len(branch.arms) == 2
        assert branch.arms[1].pipeline.items == []

    def test_weighted_arms(self):
        ast = parse_spec("BPF -> [NAT @ 0.7, NAT @ 0.3] -> IPv4Fwd")
        branch = ast.pipelines[0].items[1]
        assert [arm.weight for arm in branch.arms] == [0.7, 0.3]

    def test_arm_with_subpipeline(self):
        ast = parse_spec("BPF -> [ACL -> Encrypt, Monitor] -> IPv4Fwd")
        branch = ast.pipelines[0].items[1]
        assert [i.nf_class for i in branch.arms[0].pipeline.items] == \
            ["ACL", "Encrypt"]

    def test_bad_weight_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("BPF -> [NAT @ 1.5] -> IPv4Fwd")

    def test_empty_branch_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("BPF -> [] -> IPv4Fwd")


class TestLiterals:
    def test_booleans_and_none(self):
        ast = parse_spec("ACL(a=True, b=False, c=None) -> IPv4Fwd")
        assert ast.pipelines[0].items[0].params == {
            "a": True, "b": False, "c": None,
        }

    def test_nested_structures(self):
        ast = parse_spec("LB(backends=['10.0.0.1', '10.0.0.2']) -> IPv4Fwd")
        assert ast.pipelines[0].items[0].params["backends"] == [
            "10.0.0.1", "10.0.0.2",
        ]

    def test_hex_literal(self):
        ast = parse_spec("Tunnel(vid=0xff) -> IPv4Fwd")
        assert ast.pipelines[0].items[0].params["vid"] == 255


class TestErrors:
    def test_dangling_arrow(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("ACL ->")

    def test_garbage_statement(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("-> ACL")
