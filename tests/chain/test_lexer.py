"""Lexer tests for the chain-spec DSL."""

import pytest

from repro.chain.lexer import Lexer, TokenType
from repro.exceptions import SpecSyntaxError


def tokens_of(text):
    return [(t.type, t.value) for t in Lexer(text).tokens()]


class TestBasics:
    def test_arrow_and_idents(self):
        toks = tokens_of("ACL -> Encrypt")
        assert toks == [
            (TokenType.IDENT, "ACL"),
            (TokenType.ARROW, "->"),
            (TokenType.IDENT, "Encrypt"),
            (TokenType.EOF, None),
        ]

    def test_numbers(self):
        toks = tokens_of("1 2.5 0x1f -3")
        values = [v for t, v in toks if t is TokenType.NUMBER]
        assert values == [1, 2.5, 0x1F, -3]

    def test_strings_and_escapes(self):
        toks = tokens_of(r"'a\'b' " + '"c\\nd"')
        values = [v for t, v in toks if t is TokenType.STRING]
        assert values == ["a'b", "c\nd"]

    def test_comments_skipped(self):
        toks = tokens_of("ACL # a comment -> Encrypt\n")
        assert (TokenType.IDENT, "ACL") in toks
        assert all(v != "Encrypt" for _t, v in toks)

    def test_newline_token_outside_brackets(self):
        toks = tokens_of("a\nb")
        assert (TokenType.NEWLINE, "\n") in toks

    def test_newline_swallowed_inside_brackets(self):
        toks = tokens_of("[a,\nb]")
        assert (TokenType.NEWLINE, "\n") not in toks

    def test_line_continuation(self):
        toks = tokens_of("a \\\n-> b")
        assert (TokenType.ARROW, "->") in toks
        assert (TokenType.NEWLINE, "\n") not in toks


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SpecSyntaxError):
            Lexer("'abc").tokens()

    def test_unexpected_character(self):
        with pytest.raises(SpecSyntaxError):
            Lexer("a ~ b").tokens()

    def test_error_has_position(self):
        try:
            Lexer("abc\n  ~").tokens()
        except SpecSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected SpecSyntaxError")


class TestPunctuation:
    def test_all_single_chars(self):
        toks = tokens_of("= ( ) [ ] { } : , @ $")
        types = [t for t, _v in toks][:-1]
        assert TokenType.ASSIGN in types
        assert TokenType.AT in types
        assert TokenType.DOLLAR in types
        assert len(types) == 11
