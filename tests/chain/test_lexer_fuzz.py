"""Robustness fuzzing of the DSL front end.

The lexer/parser must never crash with anything other than
:class:`SpecSyntaxError` (or produce a valid AST), whatever text an
operator throws at them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.lexer import Lexer
from repro.chain.parser import parse_spec
from repro.exceptions import SpecError

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=120,
)
dsl_ish = st.text(
    alphabet=" ->ACLEncryptBPF[](){}:,@$'\"0123456789\n_",
    max_size=120,
)


@settings(max_examples=200, deadline=None)
@given(text=printable)
def test_lexer_total_on_printable_input(text):
    try:
        tokens = Lexer(text).tokens()
    except SpecError:
        return
    assert tokens[-1].type.name == "EOF"


@settings(max_examples=200, deadline=None)
@given(text=dsl_ish)
def test_parser_total_on_dsl_alphabet(text):
    try:
        ast = parse_spec(text)
    except SpecError:
        return
    # a successful parse yields a structurally sound AST
    assert len(ast.pipelines) == len(ast.pipeline_names)


@settings(max_examples=100, deadline=None)
@given(
    names=st.lists(
        st.sampled_from(["ACL", "BPF", "Encrypt", "Monitor", "NAT"]),
        min_size=1, max_size=6,
    )
)
def test_parser_accepts_all_generated_linear_chains(names):
    ast = parse_spec(" -> ".join(names))
    assert [item.nf_class for item in ast.pipelines[0].items] == names
