"""NF vocabulary tests (Table 3)."""

import pytest

from repro.chain.vocabulary import NFInfo, default_vocabulary
from repro.exceptions import VocabularyError
from repro.hw.platform import Platform


@pytest.fixture()
def vocab():
    return default_vocabulary()


class TestTable3:
    """Placement-choice dots of Table 3, row by row."""

    @pytest.mark.parametrize("name,platforms", [
        ("Encrypt", {Platform.SERVER}),
        ("Decrypt", {Platform.SERVER}),
        ("FastEncrypt", {Platform.SERVER, Platform.SMARTNIC}),
        ("Dedup", {Platform.SERVER}),
        ("Tunnel", {Platform.SERVER, Platform.PISA, Platform.SMARTNIC,
                    Platform.OPENFLOW}),
        ("Detunnel", {Platform.SERVER, Platform.PISA, Platform.SMARTNIC,
                      Platform.OPENFLOW}),
        ("IPv4Fwd", {Platform.PISA}),  # artificially P4-only
        ("Limiter", {Platform.SERVER}),
        ("UrlFilter", {Platform.SERVER}),
        ("Monitor", {Platform.SERVER, Platform.OPENFLOW}),
        ("NAT", {Platform.SERVER, Platform.PISA}),
        ("LB", {Platform.SERVER, Platform.PISA, Platform.SMARTNIC}),
        ("BPF", {Platform.SERVER, Platform.PISA, Platform.SMARTNIC}),
        ("ACL", {Platform.SERVER, Platform.PISA, Platform.SMARTNIC,
                 Platform.OPENFLOW}),
    ])
    def test_platforms(self, vocab, name, platforms):
        assert set(vocab.lookup(name).platforms) == platforms

    def test_exactly_two_non_replicable(self, vocab):
        """Table 3's bold rows: NAT and Limiter."""
        non_replicable = {
            name for name in vocab.names()
            if not vocab.lookup(name).replicable
        }
        assert non_replicable == {"NAT", "Limiter"}

    def test_fourteen_nfs(self, vocab):
        assert len(vocab.names()) == 14


class TestLookup:
    def test_alias(self, vocab):
        assert vocab.lookup("Encryption").name == "Encrypt"
        assert vocab.lookup("Forward").name == "IPv4Fwd"
        assert vocab.lookup("Match").name == "BPF"

    def test_unknown_raises(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.lookup("Quantum")

    def test_contains(self, vocab):
        assert "ACL" in vocab
        assert "Quantum" not in vocab


class TestExtensibility:
    def test_register_custom_nf(self, vocab):
        vocab.register(NFInfo(
            name="DPI",
            spec="Deep packet inspection",
            platforms=frozenset({Platform.SERVER}),
            stateful=True,
        ))
        assert vocab.lookup("DPI").stateful

    def test_unrestricted_lifts_ipv4fwd(self, vocab):
        lifted = vocab.unrestricted()
        assert lifted.lookup("IPv4Fwd").available_on(Platform.SERVER)
        assert lifted.lookup("IPv4Fwd").available_on(Platform.OPENFLOW)
        # original untouched
        assert not vocab.lookup("IPv4Fwd").available_on(Platform.SERVER)
