"""Unit-helper tests."""

import pytest

from repro.units import (
    DEFAULT_PACKET_BITS,
    DEFAULT_PACKET_BYTES,
    cycles_to_rate_mbps,
    gbps,
    mbps,
    mbps_to_gbps,
    mbps_to_pps,
    ms,
    pps_to_mbps,
    seconds_to_us,
    us,
)


class TestRateConversions:
    def test_gbps(self):
        assert gbps(40) == 40_000.0

    def test_roundtrip_pps(self):
        rate = 1234.5
        assert pps_to_mbps(mbps_to_pps(rate)) == pytest.approx(rate)

    def test_packet_size_matters(self):
        small = mbps_to_pps(1000, packet_bytes=64)
        large = mbps_to_pps(1000, packet_bytes=1500)
        assert small > large

    def test_default_packet_constants(self):
        assert DEFAULT_PACKET_BITS == DEFAULT_PACKET_BYTES * 8 == 12000

    def test_sim_packet_constants_single_source(self):
        # the simulator's synthesized packets and every rate conversion on
        # them must agree on one size (satellite of the columnar PR)
        from repro.sim import traffic
        from repro.units import SIM_PACKET_BITS, SIM_PACKET_BYTES

        assert SIM_PACKET_BITS == SIM_PACKET_BYTES * 8 == 4096
        assert traffic.PACKET_BITS == SIM_PACKET_BITS

    def test_cycles_to_rate(self):
        # f/c pps at 1500B: 1.7e9/17000 = 100kpps = 1200 Mbps
        assert cycles_to_rate_mbps(17_000, 1.7e9) == pytest.approx(1200.0)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_rate_mbps(0, 1.7e9)

    def test_gbps_mbps_inverse(self):
        assert mbps_to_gbps(gbps(3.5)) == pytest.approx(3.5)


class TestTimeConversions:
    def test_identity_helpers(self):
        assert mbps(5) == 5.0
        assert us(7) == 7.0

    def test_ms(self):
        assert ms(2) == 2000.0

    def test_seconds(self):
        assert seconds_to_us(0.5) == 500_000.0
