"""Flow descriptors and traffic generators."""

import pytest

from repro.net.flows import FiveTuple, Flow, TrafficAggregate
from repro.net.traffic import (
    TrafficGenerator,
    long_lived_workload,
    short_lived_workload,
)


class TestTrafficAggregate:
    def test_prefix_match(self):
        agg = TrafficAggregate(name="cust", src_prefix="10.1.0.0/16")
        assert agg.matches(FiveTuple("10.1.2.3", "8.8.8.8", 1, 2, 6))
        assert not agg.matches(FiveTuple("10.2.2.3", "8.8.8.8", 1, 2, 6))

    def test_wildcard_matches_everything(self):
        agg = TrafficAggregate()
        assert agg.matches(FiveTuple("1.1.1.1", "2.2.2.2", 3, 4, 17))

    def test_port_and_proto(self):
        agg = TrafficAggregate(dst_port=443, proto=6)
        assert agg.matches(FiveTuple("1.1.1.1", "2.2.2.2", 99, 443, 6))
        assert not agg.matches(FiveTuple("1.1.1.1", "2.2.2.2", 99, 80, 6))
        assert not agg.matches(FiveTuple("1.1.1.1", "2.2.2.2", 99, 443, 17))

    def test_describe(self):
        agg = TrafficAggregate(name="x", src_prefix="10.0.0.0/8")
        assert "src=10.0.0.0/8" in agg.describe()


class TestFlow:
    def test_active_window(self):
        flow = Flow(key=FiveTuple("1.1.1.1", "2.2.2.2", 1, 2, 6),
                    start_us=100.0, duration_us=50.0)
        assert not flow.active_at(99.0)
        assert flow.active_at(100.0)
        assert flow.active_at(149.0)
        assert not flow.active_at(150.0)

    def test_unbounded_duration(self):
        flow = Flow(key=FiveTuple("1.1.1.1", "2.2.2.2", 1, 2, 6))
        assert flow.active_at(1e12)


class TestGenerators:
    def test_deterministic_given_seed(self):
        gen1 = long_lived_workload(seed=3)
        gen2 = long_lived_workload(seed=3)
        pkts1 = [p.data for p in gen1.packets(20)]
        pkts2 = [p.data for p in gen2.packets(20)]
        assert pkts1 == pkts2

    def test_long_lived_flow_count(self):
        gen = long_lived_workload(n_flows=35)
        assert len(gen.flows) == 35
        keys = {p.five_tuple() for p in gen.packets(200)}
        assert 1 < len(keys) <= 35

    def test_long_lived_bad_count(self):
        with pytest.raises(ValueError):
            long_lived_workload(n_flows=0)

    def test_short_lived_schedule(self):
        gen = short_lived_workload(new_flows_per_sec=1000, duration_s=0.5)
        assert len(gen.flows) == 500
        starts = [f.start_us for f in gen.flows]
        assert starts == sorted(starts)

    def test_packet_sizes_respected(self):
        gen = long_lived_workload(packet_bytes=512)
        for pkt in gen.packets(10):
            assert len(pkt) == 512

    def test_duplicate_fraction_produces_duplicates(self):
        gen = long_lived_workload(seed=5)
        payloads = [p.payload for p in gen.packets(60, duplicate_fraction=0.9)]
        assert len(set(payloads)) < len(payloads)

    def test_empty_flow_list_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator(flows=[])
