"""Property-based tests: header codecs roundtrip for all field values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.headers import (
    IPv4Header,
    NSHHeader,
    TCPHeader,
    UDPHeader,
    VLANHeader,
    int_to_ip,
    ipv4_checksum,
)
from repro.net.packet import Packet

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)
ports = st.integers(min_value=0, max_value=0xFFFF)


@given(vid=st.integers(0, 4095), pcp=st.integers(0, 7), dei=st.integers(0, 1))
def test_vlan_roundtrip(vid, pcp, dei):
    header = VLANHeader(vid=vid, pcp=pcp, dei=dei)
    assert VLANHeader.unpack(header.pack()) == header


@given(spi=st.integers(0, (1 << 24) - 1), si=st.integers(0, 255))
def test_nsh_roundtrip(spi, si):
    parsed = NSHHeader.unpack(NSHHeader(spi=spi, si=si).pack())
    assert (parsed.spi, parsed.si) == (spi, si)


@given(src=ips, dst=ips, proto=st.integers(0, 255), ttl=st.integers(0, 255))
def test_ipv4_roundtrip_and_checksum(src, dst, proto, ttl):
    header = IPv4Header(src=src, dst=dst, proto=proto, ttl=ttl)
    raw = header.pack()
    parsed = IPv4Header.unpack(raw)
    assert (parsed.src, parsed.dst, parsed.proto) == (src, dst, proto)
    assert ipv4_checksum(raw) == 0


@given(sport=ports, dport=ports,
       seq=st.integers(0, 0xFFFFFFFF), flags=st.integers(0, 255))
def test_tcp_roundtrip(sport, dport, seq, flags):
    header = TCPHeader(src_port=sport, dst_port=dport, seq=seq, flags=flags)
    assert TCPHeader.unpack(header.pack()) == header


@given(sport=ports, dport=ports)
def test_udp_roundtrip(sport, dport):
    header = UDPHeader(src_port=sport, dst_port=dport)
    assert UDPHeader.unpack(header.pack()) == header


@settings(max_examples=50)
@given(src=ips, dst=ips, sport=ports, dport=ports,
       spi=st.integers(0, (1 << 24) - 1), si=st.integers(0, 255),
       payload=st.binary(max_size=64))
def test_packet_nsh_push_pop_identity(src, dst, sport, dport, spi, si,
                                      payload):
    """push_nsh then pop_nsh returns the exact original bytes."""
    pkt = Packet.build(src_ip=src, dst_ip=dst, src_port=sport,
                       dst_port=dport, payload=payload)
    original = pkt.data
    pkt.push_nsh(spi, si)
    nsh = pkt.pop_nsh()
    assert (nsh.spi, nsh.si) == (spi, si)
    assert pkt.data == original


@settings(max_examples=50)
@given(vid=st.integers(0, 4095), payload=st.binary(max_size=64))
def test_packet_vlan_push_pop_identity(vid, payload):
    pkt = Packet.build(payload=payload)
    original = pkt.data
    pkt.push_vlan(vid)
    popped = pkt.pop_vlan()
    assert popped.vid == vid
    assert pkt.data == original
