"""Packet buffer + metadata tests."""

import pytest

from repro.net.headers import PROTO_TCP, PROTO_UDP
from repro.net.packet import Packet


class TestBuild:
    def test_udp_packet_parses(self):
        pkt = Packet.build(src_ip="10.1.1.1", dst_ip="10.2.2.2",
                           src_port=1111, dst_port=53, proto=PROTO_UDP,
                           payload=b"hello")
        assert pkt.ipv4.src == "10.1.1.1"
        assert pkt.udp.dst_port == 53
        assert pkt.payload == b"hello"
        assert pkt.tcp is None

    def test_tcp_packet_parses(self):
        pkt = Packet.build(proto=PROTO_TCP, src_port=2222, dst_port=443)
        assert pkt.tcp.src_port == 2222
        assert pkt.udp is None

    def test_total_bytes_padding(self):
        pkt = Packet.build(payload=b"x", total_bytes=1500)
        assert len(pkt) == 1500

    def test_vlan_packet(self):
        pkt = Packet.build(vlan=77)
        assert pkt.vlan.vid == 77
        assert pkt.ipv4 is not None

    def test_five_tuple(self):
        pkt = Packet.build(src_ip="1.2.3.4", dst_ip="5.6.7.8",
                           src_port=9, dst_port=10, proto=PROTO_TCP)
        assert pkt.five_tuple() == ("1.2.3.4", "5.6.7.8", 9, 10, PROTO_TCP)


class TestMutation:
    def test_header_mutation_commit(self):
        pkt = Packet.build(src_ip="10.0.0.1", dst_ip="10.0.0.2")
        pkt.ipv4.dst = "172.16.0.9"
        pkt.commit()
        reparsed = Packet(pkt.data)
        assert reparsed.ipv4.dst == "172.16.0.9"

    def test_payload_replacement(self):
        pkt = Packet.build(payload=b"aaaa")
        pkt.payload = b"bb"
        assert pkt.payload == b"bb"
        assert pkt.ipv4 is not None  # headers intact


class TestNSHOps:
    def test_push_pop_nsh(self):
        pkt = Packet.build(payload=b"data")
        original = pkt.data
        pkt.push_nsh(spi=5, si=250)
        assert pkt.nsh.spi == 5
        assert pkt.metadata.spi == 5
        popped = pkt.pop_nsh()
        assert popped.si == 250
        assert pkt.data == original
        assert pkt.nsh is None

    def test_pop_without_nsh_returns_none(self):
        pkt = Packet.build()
        assert pkt.pop_nsh() is None

    def test_nsh_then_inner_parse(self):
        pkt = Packet.build(src_ip="10.9.9.9")
        pkt.push_nsh(spi=1, si=255)
        assert pkt.ipv4.src == "10.9.9.9"  # parses through the NSH


class TestVLANOps:
    def test_push_pop_vlan(self):
        pkt = Packet.build(payload=b"p")
        before = len(pkt)
        pkt.push_vlan(vid=100)
        assert pkt.vlan.vid == 100
        assert len(pkt) == before + 4
        popped = pkt.pop_vlan()
        assert popped.vid == 100
        assert pkt.vlan is None
        assert len(pkt) == before

    def test_vlan_under_nsh(self):
        pkt = Packet.build()
        pkt.push_nsh(spi=2, si=200)
        pkt.push_vlan(vid=9)
        assert pkt.nsh.spi == 2
        assert pkt.vlan.vid == 9
        pkt.pop_vlan()
        assert pkt.nsh.spi == 2

    def test_pop_vlan_untagged_is_noop(self):
        pkt = Packet.build()
        assert pkt.pop_vlan() is None


class TestCopy:
    def test_copy_is_deep(self):
        pkt = Packet.build(payload=b"orig")
        pkt.metadata.processed_by.append("nf1")
        clone = pkt.copy()
        clone.payload = b"changed"
        clone.metadata.processed_by.append("nf2")
        assert pkt.payload == b"orig"
        assert pkt.metadata.processed_by == ["nf1"]

    def test_copy_preserves_metadata(self):
        pkt = Packet.build()
        pkt.metadata.spi = 4
        pkt.metadata.fields["k"] = 1
        clone = pkt.copy()
        assert clone.metadata.spi == 4
        assert clone.metadata.fields == {"k": 1}
