"""Header codec unit tests."""

import pytest

from repro.net.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    EthernetHeader,
    IPv4Header,
    NSHHeader,
    TCPHeader,
    UDPHeader,
    VLANHeader,
    bytes_to_mac,
    int_to_ip,
    ip_to_int,
    ipv4_checksum,
    mac_to_bytes,
)


class TestAddressHelpers:
    def test_ip_roundtrip(self):
        for addr in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.0.2.17"):
            assert int_to_ip(ip_to_int(addr)) == addr

    def test_ip_to_int_value(self):
        assert ip_to_int("10.0.0.0") == 0x0A000000

    def test_bad_ip_rejected(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")
        with pytest.raises(ValueError):
            int_to_ip(1 << 33)

    def test_mac_roundtrip(self):
        mac = "02:aa:bb:cc:dd:ee"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac

    def test_bad_mac_rejected(self):
        with pytest.raises(ValueError):
            mac_to_bytes("02:aa:bb:cc:dd")


class TestEthernet:
    def test_roundtrip(self):
        header = EthernetHeader(dst="02:00:00:00:00:02",
                                src="02:00:00:00:00:01",
                                ethertype=ETHERTYPE_VLAN)
        raw = header.pack()
        assert len(raw) == EthernetHeader.LENGTH
        parsed = EthernetHeader.unpack(raw)
        assert parsed == header

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 5)


class TestVLAN:
    def test_roundtrip(self):
        header = VLANHeader(pcp=5, dei=1, vid=4094, ethertype=ETHERTYPE_IPV4)
        assert VLANHeader.unpack(header.pack()) == header

    def test_vid_bounds(self):
        with pytest.raises(ValueError):
            VLANHeader(vid=4096).pack()

    def test_vid_all_bits(self):
        for vid in (0, 1, 2047, 4095):
            assert VLANHeader.unpack(VLANHeader(vid=vid).pack()).vid == vid


class TestIPv4:
    def test_roundtrip(self):
        header = IPv4Header(src="10.1.2.3", dst="192.0.2.1", proto=6,
                            ttl=17, total_length=1500, identification=99)
        parsed = IPv4Header.unpack(header.pack())
        assert parsed.src == "10.1.2.3"
        assert parsed.dst == "192.0.2.1"
        assert parsed.proto == 6
        assert parsed.ttl == 17
        assert parsed.total_length == 1500

    def test_checksum_valid(self):
        raw = IPv4Header(src="10.0.0.1", dst="10.0.0.2").pack()
        # recomputing the checksum over the full header must give zero
        assert ipv4_checksum(raw) == 0

    def test_non_ipv4_version_rejected(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))


class TestL4:
    def test_tcp_roundtrip(self):
        header = TCPHeader(src_port=1234, dst_port=443, seq=7, ack=9,
                           flags=0x18, window=1024)
        parsed = TCPHeader.unpack(header.pack())
        assert parsed == header

    def test_udp_roundtrip(self):
        header = UDPHeader(src_port=53, dst_port=5353, length=100)
        assert UDPHeader.unpack(header.pack()) == header


class TestNSH:
    def test_roundtrip(self):
        header = NSHHeader(spi=0xABCDE, si=42)
        parsed = NSHHeader.unpack(header.pack())
        assert parsed.spi == 0xABCDE
        assert parsed.si == 42

    def test_spi_bounds(self):
        with pytest.raises(ValueError):
            NSHHeader(spi=1 << 24).pack()
        with pytest.raises(ValueError):
            NSHHeader(si=256).pack()

    def test_length(self):
        assert len(NSHHeader(spi=1, si=255).pack()) == NSHHeader.LENGTH
