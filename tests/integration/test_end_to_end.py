"""End-to-end integration: spec → place → compile → execute → measure.

These tests walk Figure 1's full flow on realistic inputs and verify the
cross-cutting invariants that unit tests cannot see.
"""

import pytest

from repro import (
    MetaCompiler,
    Placer,
    PlacementRequest,
    SLO,
    chains_from_spec,
    gbps,
    topology_for,
)
from repro.experiments.chains import chains_with_delta
from repro.hw.platform import Platform
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack
from repro.sim.testbed import TestbedSimulator


@pytest.fixture()
def profiles():
    return default_profiles()


class TestFigureOneFlow:
    def test_spec_to_packets(self, profiles):
        topology = topology_for("paper-testbed").build()
        meta = MetaCompiler(topology=topology, profiles=profiles)
        placement, artifacts = meta.compile_spec(
            "chain web: ACL -> UrlFilter -> Encrypt -> IPv4Fwd\n"
            "chain cgn: BPF -> NAT -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(30)),
                  SLO(t_min=gbps(2), t_max=gbps(30))],
        )
        rack = DeployedRack(topology, artifacts, profiles)
        traces = rack.trace_chains(placement, packets_per_chain=12)
        for trace in traces.values():
            assert trace.delivered == 12

    def test_nf_execution_order_matches_chain(self, profiles):
        """The packet's NF trail must equal a topological path of the
        chain DAG — the meta-compiler's core routing guarantee."""
        topology = topology_for("paper-testbed").build()
        meta = MetaCompiler(topology=topology, profiles=profiles)
        placement, artifacts = meta.compile_spec(
            "chain t: BPF -> Dedup -> ACL -> Monitor -> IPv4Fwd",
            slos=[SLO(t_min=gbps(0.3), t_max=gbps(30))],
        )
        rack = DeployedRack(topology, artifacts, profiles)
        cp = placement.chains[0]
        from repro.sim.runtime import _chain_packet
        pkt = _chain_packet(cp.chain, 0)
        out = rack.inject(cp, pkt)
        assert out is not None
        # map module names back to NF classes, in execution order
        trail_classes = []
        for name in out.metadata.processed_by:
            for nid, node in cp.chain.graph.nodes.items():
                mangled = nid.replace(".", "_")
                if name.endswith(nid) or mangled in name:
                    trail_classes.append(node.nf_class)
                    break
        assert trail_classes == ["BPF", "Dedup", "ACL", "Monitor", "IPv4Fwd"]

    def test_nsh_stripped_at_egress(self, profiles):
        topology = topology_for("paper-testbed").build()
        meta = MetaCompiler(topology=topology, profiles=profiles)
        placement, artifacts = meta.compile_spec(
            "chain t: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(30))],
        )
        rack = DeployedRack(topology, artifacts, profiles)
        cp = placement.chains[0]
        from repro.sim.runtime import _chain_packet
        out = rack.inject(cp, _chain_packet(cp.chain, 1))
        assert out is not None
        assert out.nsh is None  # no NSH leaks out of the ISP


class TestCrossComponentInvariants:
    def test_rates_never_exceed_estimates(self, profiles):
        for delta in (0.5, 1.0):
            chains = chains_with_delta([1, 2, 3], delta=delta)
            placement = Placer(profiles=profiles).solve(
                PlacementRequest(chains=chains)
            ).placement
            assert placement.feasible
            for cp in placement.chains:
                assert placement.rates[cp.name] <= cp.estimated_rate + 1e-6

    def test_nic_capacity_respected_by_rates(self, profiles):
        chains = chains_with_delta([1, 2, 3], delta=1.0)
        placer = Placer(profiles=profiles)
        placement = placer.solve(PlacementRequest(chains=chains)).placement
        load = sum(
            cp.server_visits.get("server0", 0.0) * placement.rates[cp.name]
            for cp in placement.chains
        )
        assert load <= gbps(40) + 1e-6

    def test_switch_stage_budget_respected(self, profiles):
        chains = chains_with_delta([1, 2, 3, 4], delta=0.5)
        placement = Placer(profiles=profiles).solve(
            PlacementRequest(chains=chains)
        ).placement
        assert placement.feasible
        assert placement.switch_stages_used is not None
        assert placement.switch_stages_used <= 12

    def test_stateful_flows_not_split_across_instances(self, profiles):
        """A replicated subgroup must keep each flow on one instance."""
        topology = topology_for("paper-testbed").build()
        meta = MetaCompiler(topology=topology, profiles=profiles)
        placement, artifacts = meta.compile_spec(
            "chain t: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(6), t_max=gbps(30))],
        )
        (sg,) = placement.chains[0].subgroups
        assert sg.cores >= 2  # replicated
        rack = DeployedRack(topology, artifacts, profiles)
        cp = placement.chains[0]
        from repro.net.packet import Packet
        hits = set()
        for _ in range(4):
            pkt = Packet.build(src_ip="10.5.5.5", dst_ip="10.0.0.1",
                               src_port=4242, payload=b"flowdata")
            out = rack.inject(cp, pkt)
            assert out is not None
            encrypt_module = next(
                name for name in out.metadata.processed_by
                if "_i" in name
            )
            hits.add(encrypt_module)
        assert len(hits) == 1


class TestMeasurementShape:
    def test_aggregate_close_to_lp_rates(self, profiles):
        chains = chains_with_delta([2, 3], delta=1.0)
        placer = Placer(profiles=profiles)
        placement = placer.solve(PlacementRequest(chains=chains)).placement
        sim = TestbedSimulator(topology=placer.topology, profiles=profiles)
        report = sim.run(placement)
        assert report.aggregate_throughput_mbps == pytest.approx(
            placement.aggregate_rate, rel=0.2
        )
        assert report.all_slos_met
