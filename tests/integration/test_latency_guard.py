"""End-to-end: a rate-compliant chain trips the tail-latency guard.

The chain's burst cap lets the LP assign the full 30 Gbps, which under
the M/M/1 model drives utilization (and hence the stamped queueing wait)
high enough that windowed p99 blows through ``d_max`` while every rate
SLO still holds. The guard must classify that as a violation, climb its
ladder (shed to minimums first), and the post-shed phase — with rates at
the t_min floor and queue factors re-derived from the lower utilization —
must come back under the latency SLO.
"""

from repro.sim.faults import (
    _SLO_RTOL,
    ChaosSpec,
    FaultTimeline,
    GuardConfig,
    run_chaos,
)
from repro.units import gbps

#: between the ~13 µs p99 at t_min rates and the ~90 µs p99 at full rate.
_D_MAX_US = 40.0


def _spec(**overrides):
    base = dict(
        spec_text="chain a: Encrypt -> IPv4Fwd",
        slos=((gbps(0.5), gbps(30), _D_MAX_US),),
        timeline=FaultTimeline(events=(), seed=23),
        packets_per_chain=512,
        flows_per_chain=32,
        batch_size=32,
        guard=GuardConfig(window_packets=128),
        seed=23,
        queueing="mm1",
    )
    base.update(overrides)
    return ChaosSpec(**base)


def test_latency_guard_sheds_and_restores_p99():
    report = run_chaos(_spec())

    # the guard saw a pure-latency violation and reacted by shedding
    assert report.latency_violations >= 1
    assert report.degradations == 1
    assert report.replans == 0

    first, final = report.phases[0], report.phases[-1]
    assert not first.compliant
    assert first.chains[0].latency_p99_us > _D_MAX_US

    # recovery: rates at the t_min floor, p99 back under the SLO
    assert final.mode == "degraded"
    assert final.compliant
    row = final.chains[0]
    assert row.latency_p99_us <= _D_MAX_US * (1.0 + _SLO_RTOL)
    assert row.latency_slo_met

    # the violation was latency, never rate: every phase met its t_min
    for phase in report.phases:
        for chain_row in phase.chains:
            assert phase.rate_slo_met(chain_row)


def test_no_violation_without_queueing_model():
    """Control: the identical workload under the fixed-cost model sits
    comfortably inside the same d_max — the violation above is entirely
    utilization-dependent queueing delay."""
    report = run_chaos(_spec(queueing="none"))
    assert report.ok
    assert report.latency_violations == 0
    assert report.degradations == 0


def test_tail_latency_objective_prevents_violation():
    """Solving the same chain set with the tail-aware objective caps
    per-device utilization up front, so the guard never has to react."""
    report = run_chaos(_spec(objective="tail_latency"))
    assert report.ok
    assert report.latency_violations == 0
    assert report.degradations == 0
    # the cap costs assigned rate relative to the throughput objective
    for phase in report.phases:
        for row in phase.chains:
            assert row.assigned_mbps < gbps(30)
            assert row.assigned_mbps >= gbps(0.5)
