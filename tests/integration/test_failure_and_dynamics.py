"""Failure handling and dynamics (§7), end to end."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.chain.slo import SLO
from repro.core.placer import Placer, PlacementRequest
from repro.hw.platform import Platform
from repro.hw.spec import topology_for
from repro.metacompiler.compiler import MetaCompiler
from repro.profiles.defaults import default_profiles
from repro.sim.runtime import DeployedRack
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


class TestSmartNICFailure:
    def test_fallback_moves_nf_to_server(self, profiles):
        """§7: "Lemur can always fall back to using server-based NFs"."""
        topology = topology_for("paper-smartnic").build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_from_spec(
            "chain c: BPF -> FastEncrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(39))],
        )
        healthy = placer.solve(PlacementRequest(chains=chains)).placement
        assert any(
            a.platform is Platform.SMARTNIC
            for a in healthy.chains[0].assignment.values()
        )
        degraded = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("agilio0",),
        )).placement
        assert degraded.feasible
        assert all(
            a.platform is not Platform.SMARTNIC
            for a in degraded.chains[0].assignment.values()
        )
        # offload was the accelerator: throughput drops but SLO holds
        assert degraded.aggregate_rate <= healthy.aggregate_rate
        assert degraded.rates["c"] >= gbps(1)

    def test_fallback_placement_executes(self, profiles):
        """The re-placed chain must actually run on the degraded rack."""
        topology = topology_for("paper-smartnic").build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_from_spec(
            "chain c: BPF -> FastEncrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(39))],
        )
        degraded = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("agilio0",),
        )).placement
        meta = MetaCompiler(topology=topology, profiles=profiles)
        artifacts = meta.compile_placement(degraded)
        rack = DeployedRack(topology, artifacts, profiles)
        traces = rack.trace_chains(degraded, packets_per_chain=8)
        assert traces["c"].delivered == 8


class TestReplanFailedSetRestoration:
    def test_replan_restores_prior_failure_membership(self, profiles):
        """Regression: replanning around device B must not un-fail device
        A that was already down before the call."""
        topology = topology_for("multi-server", servers=3).build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_from_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(30))],
        )
        topology.mark_failed("server2")
        placer.solve(PlacementRequest(
            chains=chains, failed_devices=("server1",),
        ))
        # the transient server1 failure is rolled back...
        assert "server1" not in topology.failed_devices
        # ...but server2, failed before the call, must stay failed
        assert "server2" in topology.failed_devices

    def test_replan_of_already_failed_device_keeps_it_failed(self, profiles):
        topology = topology_for("paper-smartnic").build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_from_spec(
            "chain c: BPF -> FastEncrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(39))],
        )
        topology.mark_failed("agilio0")
        degraded = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("agilio0",),
        )).placement
        assert degraded.feasible
        assert "agilio0" in topology.failed_devices


class TestServerFailure:
    def test_one_of_two_servers_fails(self, profiles):
        topology = topology_for("multi-server").build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_from_spec(
            "chain a: ACL -> Encrypt -> IPv4Fwd\n"
            "chain b: BPF -> Dedup -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(30)),
                  SLO(t_min=gbps(0.3), t_max=gbps(30))],
        )
        healthy = placer.solve(PlacementRequest(chains=chains)).placement
        assert healthy.feasible
        degraded = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("server1",),
        )).placement
        assert degraded.feasible
        for cp in degraded.chains:
            for sg in cp.subgroups:
                assert sg.server == "server0"

    def test_capacity_pressure_after_failure(self, profiles):
        """A load that needs both servers goes infeasible when one dies —
        the Placer must say so rather than overcommit."""
        from repro.experiments.chains import chains_with_delta
        topology = topology_for("multi-server").build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_with_delta([1, 2, 3], delta=1.0, profiles=profiles)
        healthy = placer.solve(PlacementRequest(chains=chains)).placement
        assert healthy.feasible
        degraded = placer.solve(PlacementRequest(
            chains=chains, failed_devices=("server1",),
        )).placement
        assert not degraded.feasible


class TestSLOSchedule:
    def test_day_night_schedule_end_to_end(self, profiles):
        """§7 dynamics: precomputed placements for a 2-slot SLO schedule,
        both executable."""
        topology = topology_for("paper-testbed").build()
        placer = Placer(topology=topology, profiles=profiles)
        chains = chains_from_spec(
            "chain biz: ACL -> Encrypt -> IPv4Fwd",
            slos=[SLO(t_min=gbps(1), t_max=gbps(30))],
        )
        schedule = {
            "biz": [
                SLO(t_min=gbps(6), t_max=gbps(30)),   # business hours
                SLO(t_min=gbps(0.5), t_max=gbps(30)),  # night
            ],
        }
        placements = placer.precompute_slo_schedule(chains, schedule)
        assert all(p.feasible for p in placements)
        day_cores = placements[0].total_cores()["server0"]
        meta = MetaCompiler(topology=topology, profiles=profiles)
        for placement in placements:
            artifacts = meta.compile_placement(placement)
            rack = DeployedRack(topology, artifacts, profiles)
            traces = rack.trace_chains(placement, packets_per_chain=4)
            assert traces["biz"].delivered == 4
        assert day_cores >= 3  # the day slot really provisions more
