"""End-to-end chaos: Fig-2-style testbed, SmartNIC failure, guard replan.

The acceptance scenario: deploy chains onto the SmartNIC-equipped testbed,
fail the SmartNIC mid-run, and require that the guard detects the SLO
violation, replans, and that every surviving chain meets its SLO minimum
after the replan — all asserted from the TrafficEngine's per-chain report
rows. The chaos report must also be byte-identical across repeated runs
and across ``--jobs`` settings.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.sim.faults import (
    ChaosSpec,
    FaultEvent,
    FaultTimeline,
    GuardConfig,
    run_chaos,
    run_chaos_checked,
)
from repro.units import gbps


def _fig2_spec(**overrides):
    """Two chains on the SmartNIC testbed; FastEncrypt rides agilio0."""
    base = dict(
        spec_text=(
            "chain c: BPF -> FastEncrypt -> IPv4Fwd\n"
            "chain d: ACL -> IPv4Fwd"
        ),
        slos=((gbps(1), gbps(39)), (gbps(1), gbps(20))),
        timeline=FaultTimeline(events=(
            FaultEvent(at_packet=256, action="fail", target="agilio0"),
        ), seed=23),
        packets_per_chain=768,
        flows_per_chain=16,
        batch_size=32,
        guard=GuardConfig(window_packets=64),
        with_smartnic=True,
    )
    base.update(overrides)
    return ChaosSpec(**base)


class TestSmartNICFailureEndToEnd:
    def test_guard_detects_replans_and_restores_slos(self):
        registry = MetricsRegistry()
        report = run_chaos(_fig2_spec(), registry=registry)

        # the failure was detected...
        assert report.violations >= 1
        assert registry.counter_value("slo.violations", chain="c") >= 1
        # ...the guard degraded, then replanned off the dead SmartNIC...
        assert report.degradations >= 1
        assert report.replans == 1
        assert registry.counter_value("replan.count") == 1
        assert registry.counter_value(
            "faults.injected", action="fail", target="agilio0") == 1
        # ...and the replanned placement meets every SLO minimum again,
        # asserted from the traffic engine's per-chain report rows.
        final = report.phases[-1]
        assert final.label == "replanned"
        assert {row.chain_name for row in final.chains} == {"c", "d"}
        for row in final.chains:
            t_min = final.t_mins[row.chain_name]
            assert t_min > 0
            assert row.delivered_mbps >= t_min, (
                f"{row.chain_name} delivers {row.delivered_mbps:.1f} Mbps "
                f"< SLO minimum {t_min:.1f} Mbps after replan"
            )
        assert final.compliant
        # replan latency histogram exported
        snapshot = registry.snapshot()
        assert any(
            h["name"] == "replan.latency_seconds"
            for h in snapshot["histograms"]
        )

    def test_chain_untouched_by_failure_never_violates(self):
        registry = MetricsRegistry()
        run_chaos(_fig2_spec(), registry=registry)
        # chain d never used the SmartNIC, so it never violated
        assert registry.counter_value("slo.violations", chain="d") == 0

    def test_report_byte_identical_across_repeats(self):
        first = run_chaos(_fig2_spec())
        second = run_chaos(_fig2_spec())
        assert first.render() == second.render()
        assert first.to_json() == second.to_json()

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_report_byte_identical_across_jobs(self, jobs):
        """`--jobs` only adds replica cross-checks; output is invariant."""
        serial = run_chaos(_fig2_spec())
        checked = run_chaos_checked(_fig2_spec(), jobs=jobs)
        assert checked.render() == serial.render()

    def test_guard_replan_is_warm_on_repeated_identical_failure(self):
        """The placement cache fingerprints the failure state: the same
        failure on the same problem replans from cache."""
        from repro.core.cache import PlacementCache

        cache = PlacementCache()
        cold = run_chaos(_fig2_spec(), cache=cache)
        warm = run_chaos(_fig2_spec(), cache=cache)
        assert cold.replan_cache_hits == 0
        assert warm.replan_cache_hits == 1
        assert warm.phases[-1].compliant
        assert warm.total_delivered == cold.total_delivered
