"""Figure/table generator unit tests (fast variants of the benchmarks)."""

import pytest

from repro.experiments.figures import (
    MultiServerResult,
    OpenFlowResult,
    SmartNICResult,
    StageExperimentResult,
    figure3c_openflow,
    stage_constraint_experiment,
    table4_rows,
)


class TestResultRecords:
    def test_multiserver_lookup(self):
        result = MultiServerResult(rows=[
            (1, 0.5, True, 1000.0),
            (1, 1.5, False, 0.0),
            (2, 0.5, True, 2000.0),
        ])
        assert result.aggregate(1, 0.5) == 1000.0
        assert result.aggregate(1, 1.5) is None
        assert result.aggregate(9, 9.0) is None
        assert "INFEASIBLE" in result.print_table()

    def test_smartnic_lookup(self):
        result = SmartNICResult(rows=[
            (True, 0.5, True, 40000.0),
            (False, 0.5, True, 27000.0),
        ])
        assert result.aggregate(True, 0.5) == 40000.0
        assert "smartnic" in result.print_table()

    def test_openflow_speedup(self):
        result = OpenFlowResult(offloaded_mbps=10000.0, server_mbps=750.0)
        assert result.speedup == pytest.approx(13.33, rel=0.01)
        assert "speedup" in result.print_table()

    def test_openflow_zero_server_rate(self):
        assert OpenFlowResult(offloaded_mbps=1.0).speedup == 0.0

    def test_stage_result_rendering(self):
        result = StageExperimentResult(
            all_switch_11_fits=False, lemur_feasible=True,
            lemur_nats_on_switch=10, compiler_stages_10=12,
            conservative_stages_10=14, naive_stages_10=26,
        )
        text = result.print_table()
        assert "10 NATs on switch" in text
        assert "12" in text and "14" in text and "26" in text


class TestGenerators:
    def test_table4_header_and_rows(self):
        rows = table4_rows(runs=50)
        assert len(rows) == 9  # header + 8 data rows
        assert "NUMA" in rows[0]
        assert any("NAT (12000 entries)" in r for r in rows)

    def test_figure3c_deterministic(self):
        first = figure3c_openflow()
        second = figure3c_openflow()
        assert first.server_mbps == pytest.approx(second.server_mbps)

    def test_stage_experiment_consistency(self):
        result = stage_constraint_experiment()
        assert result.compiler_stages_10 <= result.conservative_stages_10
        assert result.conservative_stages_10 < result.naive_stages_10


class TestGraphDot:
    def test_to_dot_structure(self):
        from repro.chain.graph import chains_from_spec
        chain = chains_from_spec(
            "chain d: BPF -> [ACL @ 0.7, Monitor @ 0.3] -> IPv4Fwd"
        )[0]
        dot = chain.graph.to_dot()
        assert dot.startswith('digraph "d"')
        assert dot.count("->") == 4
        assert "diamond" in dot  # branch/merge nodes highlighted
        assert "0.70" in dot     # fraction label
