"""Sweep engine: SweepSpec API, parallel/serial equivalence, isolation."""

import warnings

import pytest

from repro.core.cache import PlacementCache, scoped_cache
from repro.experiments.runner import (
    DEFAULT_DELTAS,
    SweepSpec,
    run_delta_sweep,
    run_sweep,
)
from repro.experiments.schemes import SCHEMES
from repro.hw.spec import topology_for
from repro.obs import scoped_registry
from repro.profiles.defaults import default_profiles

FAST = {k: v for k, v in SCHEMES.items()
        if k in ("Lemur", "SW Preferred", "Greedy")}


@pytest.fixture()
def profiles():
    return default_profiles()


@pytest.fixture()
def spec(profiles):
    return SweepSpec(
        chain_indices=(2, 3), deltas=(0.5, 1.0), schemes=FAST,
        profiles=profiles, measure=False, cache=False,
    )


class TestSweepSpec:
    def test_spec_and_shim_agree(self, spec, profiles):
        via_spec = run_sweep(spec)
        via_shim = run_delta_sweep(
            (2, 3), deltas=(0.5, 1.0), schemes=FAST,
            profiles=profiles, measure=False, cache=False,
        )
        assert via_spec.results == via_shim.results
        assert via_spec.chain_indices == via_shim.chain_indices

    def test_run_delta_sweep_accepts_spec(self, spec):
        assert run_delta_sweep(spec).results == run_sweep(spec).results

    def test_default_deltas_are_figure2(self):
        assert SweepSpec(chain_indices=(1,)).deltas == DEFAULT_DELTAS

    def test_cells_enumerate_serial_order(self, spec):
        cells = spec.cells()
        assert [c.index for c in cells] == list(range(len(cells)))
        assert [(c.delta, c.scheme) for c in cells] == [
            (d, s) for d in spec.deltas for s in FAST
        ]


class TestParallelEquivalence:
    def test_parallel_rows_identical_to_serial(self, spec):
        serial = run_sweep(spec)
        parallel = run_sweep(spec.with_jobs(2))
        assert serial.results == parallel.results  # same rows, same order

    def test_parallel_measured_rows_identical(self, profiles):
        measured = SweepSpec(
            chain_indices=(2,), deltas=(0.5,),
            schemes={"Lemur": SCHEMES["Lemur"]},
            profiles=profiles, measure=True, cache=False,
        )
        assert run_sweep(measured).results == \
            run_sweep(measured.with_jobs(2)).results

    def test_unpicklable_scheme_falls_back_to_serial(self, profiles):
        lambda_schemes = {
            "Lemur": lambda chains, topo, prof, packet_bits: SCHEMES["Lemur"](
                chains, topo, prof, packet_bits=packet_bits
            ),
        }
        spec = SweepSpec(
            chain_indices=(2, 3), deltas=(0.5, 1.0), schemes=lambda_schemes,
            profiles=profiles, measure=False, cache=False, jobs=2,
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            sweep = run_sweep(spec)
        assert len(sweep.results) == 2

    def test_worker_metrics_merge_back(self, spec):
        with scoped_registry() as registry:
            run_sweep(spec.with_jobs(2))
            cells = sum(
                c.value for c in registry.counters()
                if c.name == "sweep.cells"
            )
            assert cells == len(spec.cells())
            # placer-side instrumentation recorded in workers came home too
            assert registry.counter_value(
                "lp.solves", objective="marginal") > 0
            worker_hists = [h for h in registry.histograms()
                            if h.name == "sweep.worker.seconds"]
            assert worker_hists
            assert sum(h.count for h in worker_hists) >= 1


class TestTopologyIsolation:
    def test_caller_topology_never_mutated(self, profiles):
        topology = topology_for("paper-testbed").build()
        before_reserved = [s.reserved_cores for s in topology.servers]
        run_delta_sweep((2, 3), deltas=(0.5, 1.0), schemes=FAST,
                        topology=topology, profiles=profiles,
                        measure=False, cache=False)
        assert topology.failed_devices == set()
        assert [s.reserved_cores for s in topology.servers] == before_reserved

    def test_mutating_scheme_does_not_leak_across_cells(self, profiles):
        """A scheme that damages its topology only damages its own cell."""
        calls = []

        def vandal(chains, topology, prof, packet_bits):
            calls.append(sorted(topology.failed_devices))
            topology.mark_failed("server0")
            return SCHEMES["Lemur"](chains, topology, prof,
                                    packet_bits=packet_bits)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # unpicklable-scheme fallback
            run_delta_sweep((2,), deltas=(0.5, 1.0, 1.5),
                            schemes={"Vandal": vandal},
                            topology=topology_for("multi-server").build(),
                            profiles=profiles,
                            measure=False, cache=False, jobs=1)
        # every cell started from a pristine copy: no failures carried over
        assert calls == [[], [], []]


class TestSweepCaching:
    def test_warm_rerun_hits_and_matches(self, profiles):
        spec = SweepSpec(
            chain_indices=(2, 3), deltas=(0.5, 1.0), schemes=FAST,
            profiles=profiles, measure=False, cache=True,
        )
        with scoped_cache(PlacementCache()) as cache:
            cold = run_sweep(spec)
            assert cache.hits == 0
            assert cache.misses == len(spec.cells())
            warm = run_sweep(spec)
            assert cache.hits == len(spec.cells())
            assert cold.results == warm.results

    def test_cache_hit_preserves_measured_rows(self, profiles):
        spec = SweepSpec(
            chain_indices=(2,), deltas=(0.5,),
            schemes={"Lemur": SCHEMES["Lemur"]},
            profiles=profiles, measure=True, cache=True,
        )
        with scoped_cache(PlacementCache()) as cache:
            cold = run_sweep(spec)
            warm = run_sweep(spec)
            assert cache.hits == 1
            assert cold.results == warm.results

    def test_distinct_cells_never_collide(self, profiles):
        spec = SweepSpec(
            chain_indices=(2, 3), deltas=(0.5, 1.0), schemes=FAST,
            profiles=profiles, measure=False, cache=True,
        )
        with scoped_cache(PlacementCache()) as cache:
            run_sweep(spec)
            # every (scheme, δ) cell is a distinct problem -> distinct key
            assert len(cache) == len(spec.cells())
