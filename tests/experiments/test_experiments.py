"""Experiment harness tests: canonical chains, δ sweeps, figure helpers."""

import pytest

from repro.experiments.chains import (
    base_rate_mbps,
    canonical_chain,
    canonical_chains,
    chains_with_delta,
    nat_stress_chain,
)
from repro.experiments.runner import run_delta_sweep
from repro.experiments.schemes import SCHEMES, run_scheme, scheme_names
from repro.exceptions import SpecError
from repro.hw.spec import topology_for
from repro.profiles.defaults import default_profiles
from repro.units import gbps


@pytest.fixture()
def profiles():
    return default_profiles()


class TestCanonicalChains:
    def test_all_five_build(self):
        for index in range(1, 6):
            chain = canonical_chain(index)
            assert len(chain.graph) > 0

    def test_table2_composition(self):
        c2 = canonical_chain(2)
        assert sorted(set(c2.graph.nf_multiset())) == \
            ["Encrypt", "IPv4Fwd", "LB", "NAT"]
        assert c2.graph.nf_multiset().count("NAT") == 3

        c3 = canonical_chain(3)
        assert c3.graph.nf_multiset() == \
            ["Dedup", "ACL", "Limiter", "LB", "IPv4Fwd"]

        c4 = canonical_chain(4)
        multiset = c4.graph.nf_multiset()
        assert multiset.count("LB") == 3 and multiset.count("Limiter") == 3

        c5 = canonical_chain(5)
        assert c5.graph.nf_multiset() == \
            ["ACL", "UrlFilter", "FastEncrypt", "IPv4Fwd"]

    def test_chain1_branches_three_ways(self):
        c1 = canonical_chain(1)
        (entry,) = c1.graph.entry_nodes()
        assert len(c1.graph.successors(entry)) == 3

    def test_unknown_index_rejected(self):
        with pytest.raises(SpecError):
            canonical_chain(9)

    def test_nat_stress_chain(self):
        chain = nat_stress_chain(11)
        assert chain.graph.nf_multiset().count("NAT") == 11


class TestBaseRates:
    def test_base_rate_is_slowest_software_nf(self, profiles):
        c3 = canonical_chain(3)
        base = base_rate_mbps(c3, profiles)
        dedup_rate = 1.7e9 / profiles.server_cycles("Dedup") * 12000 / 1e6
        assert base == pytest.approx(dedup_rate)

    def test_hardware_only_nfs_ignored(self, profiles):
        # IPv4Fwd (P4-only) must not contribute
        c2 = canonical_chain(2)
        base = base_rate_mbps(c2, profiles)
        encrypt_rate = 1.7e9 / profiles.server_cycles("Encrypt") * 12000 / 1e6
        assert base == pytest.approx(encrypt_rate)

    def test_delta_scales_tmin(self, profiles):
        chains = chains_with_delta([3], delta=2.0, profiles=profiles)
        base = base_rate_mbps(canonical_chain(3), profiles)
        assert chains[0].slo.t_min == pytest.approx(2.0 * base)
        assert chains[0].slo.t_max == pytest.approx(gbps(100))


class TestRunner:
    def test_mini_sweep_structure(self, profiles):
        schemes = {k: v for k, v in SCHEMES.items()
                   if k in ("Lemur", "SW Preferred")}
        sweep = run_delta_sweep([2, 3], deltas=(0.5, 1.5),
                                schemes=schemes, profiles=profiles,
                                measure=False)
        assert len(sweep.results) == 4
        lemur = sweep.for_scheme("Lemur")
        assert all(r.feasible for r in lemur)
        assert sweep.feasibility_fraction("Lemur") == 1.0

    def test_measured_mode_populates(self, profiles):
        schemes = {"Lemur": SCHEMES["Lemur"]}
        sweep = run_delta_sweep([2], deltas=(0.5,), schemes=schemes,
                                profiles=profiles, measure=True)
        (cell,) = sweep.results
        assert cell.measured_mbps > 0
        assert cell.measured_mbps == pytest.approx(cell.predicted_mbps,
                                                   rel=0.15)

    def test_marginal_lead_metric(self, profiles):
        schemes = {k: v for k, v in SCHEMES.items()
                   if k in ("Lemur", "SW Preferred")}
        sweep = run_delta_sweep([2, 3], deltas=(0.5,), schemes=schemes,
                                profiles=profiles, measure=False)
        assert sweep.max_marginal_lead_mbps("Lemur") > 0

    def test_table_rendering(self, profiles):
        schemes = {"Lemur": SCHEMES["Lemur"]}
        sweep = run_delta_sweep([2], deltas=(0.5,), schemes=schemes,
                                profiles=profiles, measure=False)
        text = sweep.print_table()
        assert "Lemur" in text and "δ=0.5" in text


class TestSchemeRegistry:
    def test_six_schemes(self):
        assert scheme_names() == [
            "Lemur", "Optimal", "HW Preferred", "SW Preferred",
            "Min Bounce", "Greedy",
        ]

    def test_run_scheme_by_name(self, profiles):
        chains = chains_with_delta([2], delta=0.5, profiles=profiles)
        placement = run_scheme("Lemur", chains, topology_for("paper-testbed").build(), profiles)
        assert placement.feasible

    def test_ablations_accessible(self, profiles):
        chains = chains_with_delta([2], delta=0.5, profiles=profiles)
        placement = run_scheme("No Core Alloc", chains, topology_for("paper-testbed").build(),
                               profiles)
        assert placement is not None

    def test_unknown_scheme(self, profiles):
        with pytest.raises(KeyError):
            run_scheme("Magic", [], topology_for("paper-testbed").build(), profiles)
