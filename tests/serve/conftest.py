"""Shared fixtures for the control-plane daemon tests."""

import asyncio

import pytest

from repro.serve import ServeConfig, ServeDaemon

SPEC = (
    "chain enterprise: ACL -> Encrypt -> IPv4Fwd\n"
    "chain residential: BPF -> NAT -> IPv4Fwd\n"
)


def _make_config(**overrides) -> ServeConfig:
    defaults = dict(
        spec_text=SPEC,
        slos=((1000.0, 20000.0), (1000.0, 20000.0)),
        packets_per_phase=16,
        flows_per_chain=8,
        batch_size=8,
        checkpoint_every=2,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _drive(config, state_dir, commands, *, crash=False):
    """Start a daemon, submit ``commands``, stop (or crash) it.

    ``crash=True`` abandons the worker without draining or writing a
    final checkpoint — the closest in-process analogue to SIGKILL; the
    journal is still durable because appends fsync before the ack.
    Returns ``(daemon, outcomes)``.
    """

    async def _run():
        daemon = ServeDaemon(config, state_dir)
        await daemon.start()
        outcomes = [await daemon.submit(c) for c in commands]
        if crash:
            daemon._worker.cancel()
        else:
            await daemon.stop()
        return daemon, outcomes

    return asyncio.run(_run())


@pytest.fixture()
def make_config():
    return _make_config


@pytest.fixture()
def drive():
    return _drive


@pytest.fixture()
def config():
    return _make_config()
