"""Crash recovery: checkpoint + journal replay rebuild a byte-identical rack.

The acceptance invariant for the control-plane daemon: kill it at an
arbitrary applied-command boundary, restart it on the same state dir,
finish the remaining commands — and the final report must be
byte-identical to an uninterrupted run's, because recovery replays the
acknowledged command prefix through the same deterministic core.
"""

import pytest

from repro.hw.spec import topology_for
from repro.serve import Arrive, Depart, InjectFault, Scale, ServeConfig

COMMANDS = [
    Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
           t_min_mbps=500.0, t_max_mbps=4000.0),
    Scale(chain="enterprise", t_min_mbps=1500.0),
    InjectFault(action="degrade_link", target="server0", severity=0.4),
    Depart(chain="dyn0"),
    InjectFault(action="restore_link", target="server0"),
]


@pytest.mark.parametrize("checkpoint_every", [2, 0],
                         ids=["checkpointed", "journal-only"])
@pytest.mark.parametrize("kill_after", [1, 3, 5])
def test_recovered_report_is_byte_identical(make_config, drive, tmp_path,
                                            checkpoint_every, kill_after):
    config = make_config(checkpoint_every=checkpoint_every)

    # the uninterrupted reference run
    ref_daemon, ref_outcomes = drive(
        config, tmp_path / "reference", COMMANDS
    )
    reference = ref_daemon.report()

    # the crashed run: SIGKILL analogue after `kill_after` acked commands
    crashed, partial = drive(
        config, tmp_path / "crashed", COMMANDS[:kill_after], crash=True
    )

    # restart on the same state dir: checkpoint load + journal replay
    recovered, remaining = drive(
        config, tmp_path / "crashed", COMMANDS[kill_after:]
    )
    assert recovered.recovered is True

    # the recovered daemon resumed at the right sequence with the same
    # state digest the reference run had at that boundary
    assert remaining[0].seq == kill_after + 1 if remaining else True
    for ref, got in zip(ref_outcomes[kill_after:], remaining):
        assert got.seq == ref.seq
        assert got.status == ref.status
        assert got.digest == ref.digest

    report = recovered.report()
    assert report.recovered is True
    # `recovered` is excluded from the serialized report: byte-identical
    assert report.to_json() == reference.to_json()
    assert report.render() == reference.render()


def test_recovery_is_invisible_midstream(make_config, drive, tmp_path):
    """Commands after recovery decide exactly as without the crash —
    including a rejection, which must replay as a rejection."""
    config = make_config()
    commands = [
        Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
               t_min_mbps=500.0),
        Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
               t_min_mbps=500.0),  # duplicate: rejected, still journaled
        Scale(chain="dyn0", t_min_mbps=700.0),
    ]
    ref_daemon, _ = drive(config, tmp_path / "reference", commands)
    drive(config, tmp_path / "crashed", commands[:2], crash=True)
    recovered, _ = drive(config, tmp_path / "crashed", commands[2:])
    assert recovered.report().to_json() == ref_daemon.report().to_json()
    # the replayed rejection is part of the recovered report
    assert recovered.report().rejected == 1


def test_fresh_state_dir_is_not_recovered(config, drive, tmp_path):
    daemon, _ = drive(config, tmp_path / "state", [])
    assert daemon.recovered is False


# -- multi-rack fabric ------------------------------------------------------

FABRIC_SPEC = "\n".join(
    f"chain c{i}: ACL(rules=64) -> Encrypt -> IPv4Fwd" for i in range(6)
)
FABRIC_COMMANDS = [
    Arrive(chain="c6", spec="chain c6: ACL(rules=64) -> Encrypt -> IPv4Fwd",
           t_min_mbps=4000.0, t_max_mbps=9000.0, d_max_us=400.0),
    Scale(chain="c0", t_min_mbps=6000.0, t_max_mbps=9000.0),
    Depart(chain="c6"),
]


def _fabric_config(make_config):
    return make_config(
        spec_text=FABRIC_SPEC,
        slos=tuple((4000.0, 9000.0, 400.0) for _ in range(6)),
        topology=topology_for("two-rack"),
    )


def test_topology_spec_survives_the_config_round_trip(make_config):
    """The persistence contract: a fabric config rebuilds byte-identical
    from its own config.json payload."""
    config = _fabric_config(make_config)
    assert config.topology is not None
    assert ServeConfig.parse_json(config.to_json()) == config


def test_persisted_config_carries_the_topology(make_config, drive, tmp_path):
    import json

    config = _fabric_config(make_config)
    drive(config, tmp_path / "state", [])
    payload = json.loads((tmp_path / "state" / "config.json").read_text())
    assert payload["topology"] == config.topology.as_dict()


@pytest.mark.parametrize("kill_after", [1, 2])
def test_fabric_recovery_is_byte_identical(make_config, drive, tmp_path,
                                           kill_after):
    """Crash recovery over a two-rack fabric: the recovered daemon holds
    the same chain→rack assignment and rack digests as an uninterrupted
    run (the fabric core's whole state feeds the digest)."""
    config = _fabric_config(make_config)

    reference, ref_outcomes = drive(
        config, tmp_path / "reference", FABRIC_COMMANDS
    )
    drive(config, tmp_path / "crashed", FABRIC_COMMANDS[:kill_after],
          crash=True)
    recovered, remaining = drive(
        config, tmp_path / "crashed", FABRIC_COMMANDS[kill_after:]
    )
    assert recovered.recovered is True
    for ref, got in zip(ref_outcomes[kill_after:], remaining):
        assert got.seq == ref.seq
        assert got.status == ref.status
        assert got.digest == ref.digest
    assert recovered.core.state_digest() == reference.core.state_digest()
    assert recovered.report().to_json() == reference.report().to_json()
