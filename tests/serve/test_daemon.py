"""The rack-owner daemon: serialized mutations, journaling, reporting."""

import asyncio
import json

import pytest

from repro.exceptions import ServeError
from repro.serve import (
    Arrive,
    Depart,
    InjectFault,
    Journal,
    Scale,
    ServeConfig,
    ServeDaemon,
    Snapshot,
)
from repro.serve.commands import (
    STATUS_APPLIED,
    STATUS_ERROR,
    STATUS_INVALID,
    STATUS_REJECTED,
)

ARRIVE = Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
                t_min_mbps=500.0, t_max_mbps=4000.0)


class TestMutations:
    def test_day0_day2_flow(self, config, drive, tmp_path):
        daemon, outcomes = drive(config, tmp_path / "state", [
            ARRIVE,
            Scale(chain="dyn0", t_min_mbps=800.0),
            InjectFault(action="degrade_link", target="server0",
                        severity=0.4),
            InjectFault(action="restore_link", target="server0"),
            Depart(chain="dyn0"),
        ])
        assert [o.status for o in outcomes] == [STATUS_APPLIED] * 5
        assert [o.seq for o in outcomes] == [1, 2, 3, 4, 5]
        # lifecycle commands carry the core's decision verbatim
        assert outcomes[0].decision.accepted
        assert outcomes[0].decision.chain == "dyn0"
        assert outcomes[2].decision is None  # fault probes have none
        report = daemon.report()
        assert report.seq == 5
        assert report.accepted == 3
        # one deterministic phase per applied command + the bootstrap one
        assert len(report.phases) == 6
        assert report.phases[0].label == "initial"
        assert report.phases[1].label == "s1:arrive(dyn0)"

    def test_rejection_consumes_seq_and_is_journaled(self, config, drive,
                                                     tmp_path):
        daemon, outcomes = drive(config, tmp_path / "state", [
            ARRIVE,
            ARRIVE,  # duplicate name: admission refuses it
        ])
        assert outcomes[0].status == STATUS_APPLIED
        assert outcomes[1].status == STATUS_REJECTED
        assert outcomes[1].seq == 2
        assert not outcomes[1].decision.accepted
        journal = Journal(tmp_path / "state" / "journal.jsonl")
        assert [r["seq"] for r in journal.replay()] == [1, 2]

    def test_invalid_fault_target_consumes_no_seq(self, config, drive,
                                                  tmp_path):
        daemon, outcomes = drive(config, tmp_path / "state", [
            InjectFault(action="fail", target="no-such-device"),
        ])
        assert outcomes[0].status == STATUS_INVALID
        assert outcomes[0].seq == 0
        assert not (tmp_path / "state" / "journal.jsonl").exists()

    def test_statically_invalid_command_consumes_no_seq(self, config,
                                                        drive, tmp_path):
        daemon, outcomes = drive(config, tmp_path / "state", [
            Depart(chain=""),
        ])
        assert outcomes[0].status == STATUS_INVALID
        assert daemon.seq == 0

    def test_snapshot_reads_without_journaling(self, config, drive,
                                               tmp_path):
        daemon, outcomes = drive(config, tmp_path / "state", [
            ARRIVE,
            Snapshot(),
        ])
        snap = outcomes[1]
        assert snap.status == STATUS_APPLIED
        assert snap.seq == 1  # the current head, not a new seq
        assert snap.snapshot["seq"] == 1
        assert {c["chain"] for c in snap.snapshot["active"]} == {
            "enterprise", "residential", "dyn0",
        }
        journal = Journal(tmp_path / "state" / "journal.jsonl")
        assert [r["seq"] for r in journal.replay()] == [1]

    def test_worker_survives_internal_errors(self, config, tmp_path):
        async def _run():
            daemon = ServeDaemon(config, tmp_path / "state")
            await daemon.start()
            real_core = daemon.core
            daemon.core = None  # sabotage: the next mutation raises
            broken = await daemon.submit(Depart(chain="enterprise"))
            daemon.core = real_core
            # the worker is still alive and answering
            snap = await daemon.submit(Snapshot())
            await daemon.stop(checkpoint=False)
            return broken, snap

        broken, snap = asyncio.run(_run())
        assert broken.status == STATUS_ERROR
        assert "AttributeError" in broken.error
        assert snap.status == STATUS_APPLIED


class TestConfig:
    def test_round_trip(self, config):
        assert ServeConfig.parse_json(config.to_json()) == config

    def test_unknown_field_rejected(self, config):
        payload = json.loads(config.to_json())
        payload["turbo"] = True
        with pytest.raises(ServeError, match="unknown fields"):
            ServeConfig.from_dict(payload)

    def test_config_is_persisted_and_verified(self, config, make_config,
                                              drive, tmp_path):
        drive(config, tmp_path / "state", [])
        stored = ServeConfig.parse_json(
            (tmp_path / "state" / "config.json").read_text()
        )
        assert stored == config
        with pytest.raises(ServeError, match="different configuration"):
            drive(make_config(seed=99), tmp_path / "state", [])

    def test_validate_bounds(self, make_config):
        with pytest.raises(ServeError):
            make_config(packets_per_phase=0).validate()
        with pytest.raises(ServeError):
            make_config(checkpoint_every=-1).validate()


class TestReport:
    def test_render_and_protocol_surface(self, config, drive, tmp_path):
        daemon, _ = drive(config, tmp_path / "state", [ARRIVE])
        report = daemon.report()
        text = report.render()
        assert "control-plane report" in text
        assert "s1 t1 arrive dyn0 -> accepted" in text
        assert report.ok is True
        doc = json.loads(report.to_json())
        assert doc["seq"] == 1
        assert doc["commands"][0]["command"]["kind"] == "arrive"
        # recovered is process metadata, not run output (the recovery
        # invariant compares as_dict across restarts)
        assert "recovered" not in doc
