"""The stdlib HTTP front-end: routes, status mapping, shutdown."""

import json
import threading
import urllib.error
import urllib.request

from repro.serve import run_server


def _request(url, payload=None):
    """Return ``(http status, decoded JSON body)`` for GET or POST."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_http_round_trip(config, tmp_path):
    ready = threading.Event()
    url = {}
    result = {}

    def on_ready(server_url):
        url["base"] = server_url
        ready.set()

    def serve():
        result["report"] = run_server(
            config, tmp_path / "state", ready=on_ready
        )

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        assert ready.wait(120), "daemon never became ready"
        base = url["base"]

        code, health = _request(base + "/v1/health")
        assert code == 200
        assert health["seq"] == 0
        assert health["recovered"] is False

        code, schema = _request(base + "/v1/schema")
        assert code == 200
        assert set(schema["commands"]) == {
            "arrive", "scale", "depart", "inject_fault", "snapshot",
        }

        # applied -> 200 with the admission decision verbatim
        code, body = _request(base + "/v1/commands", {
            "kind": "arrive", "chain": "dyn0",
            "spec": "chain dyn0: ACL -> IPv4Fwd", "t_min_mbps": 500.0,
        })
        assert code == 200
        assert body["status"] == "applied"
        assert body["seq"] == 1
        assert body["decision"]["accepted"] is True

        # admission rejection -> 409, still consuming a sequence number
        code, body = _request(base + "/v1/commands", {
            "kind": "arrive", "chain": "dyn0",
            "spec": "chain dyn0: ACL -> IPv4Fwd", "t_min_mbps": 500.0,
        })
        assert code == 409
        assert body["status"] == "rejected"
        assert body["seq"] == 2
        assert body["decision"]["reason"]

        # wire-strictness -> 400 before reaching the daemon
        code, body = _request(base + "/v1/commands", {
            "kind": "arrive", "chain": "x", "spec": "chain x: ACL",
            "t_min_mbps": 1.0, "turbo": True,
        })
        assert code == 400
        assert "unknown fields" in body["error"]

        code, body = _request(base + "/v1/commands", {"kind": "warp"})
        assert code == 400

        # consistent snapshot through the serialized queue
        code, body = _request(base + "/v1/state")
        assert code == 200
        assert body["snapshot"]["seq"] == 2
        assert "dyn0" in {
            c["chain"] for c in body["snapshot"]["active"]
        }

        code, metrics = _request(base + "/v1/metrics")
        assert code == 200
        assert "counters" in metrics

        code, report = _request(base + "/v1/report")
        assert code == 200
        assert report["seq"] == 2

        code, body = _request(base + "/v1/nowhere")
        assert code == 404

        code, body = _request(base + "/v1/shutdown", {})
        assert code == 200
    finally:
        thread.join(timeout=120)
    assert not thread.is_alive()

    final = result["report"]
    assert final.seq == 2
    assert final.accepted == 1
    assert final.rejected == 1
