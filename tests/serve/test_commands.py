"""Typed command/outcome wire forms: strict parsing, round-trips, schemas."""

import pytest

from repro.exceptions import CommandError
from repro.serve.commands import (
    MUTATING_KINDS,
    STATUS_APPLIED,
    Arrive,
    CommandOutcome,
    Depart,
    InjectFault,
    Scale,
    Snapshot,
    command_schemas,
    parse_command,
)

ROUND_TRIP = [
    Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
           t_min_mbps=500.0),
    Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
           t_min_mbps=500.0, t_max_mbps=4000.0, d_max_us=250.0),
    Scale(chain="enterprise", t_min_mbps=1500.0),
    Scale(chain="enterprise", t_min_mbps=1500.0, t_max_mbps=9000.0),
    Depart(chain="enterprise"),
    InjectFault(action="fail", target="server0"),
    InjectFault(action="degrade_link", target="server0", severity=0.4),
    Snapshot(),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "command", ROUND_TRIP, ids=lambda c: repr(c)[:48]
    )
    def test_as_dict_parse_identity(self, command):
        assert parse_command(command.as_dict()) == command

    def test_infinities_are_omitted(self):
        wire = Arrive(chain="dyn0", spec="chain dyn0: ACL -> IPv4Fwd",
                      t_min_mbps=500.0).as_dict()
        assert "t_max_mbps" not in wire
        assert "d_max_us" not in wire

    def test_default_severity_is_omitted(self):
        wire = InjectFault(action="fail", target="server0").as_dict()
        assert "severity" not in wire


class TestStrictParsing:
    def test_non_object_rejected(self):
        with pytest.raises(CommandError, match="must be an object"):
            parse_command(["arrive"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(CommandError, match="unknown command kind"):
            parse_command({"kind": "explode"})

    def test_unknown_field_rejected(self):
        with pytest.raises(CommandError, match="unknown fields"):
            parse_command({"kind": "depart", "chain": "a", "force": True})

    def test_missing_required_rejected(self):
        with pytest.raises(CommandError, match="missing required"):
            parse_command({"kind": "arrive", "chain": "dyn0"})

    def test_mistyped_field_rejected(self):
        with pytest.raises(CommandError, match="malformed"):
            parse_command({"kind": "scale", "chain": "a",
                           "t_min_mbps": "plenty"})

    def test_semantic_validation_runs(self):
        with pytest.raises(CommandError, match="t_min_mbps > 0"):
            parse_command({"kind": "scale", "chain": "a",
                           "t_min_mbps": -3.0})

    def test_arrive_spec_must_declare_the_chain(self):
        with pytest.raises(CommandError, match="exactly"):
            Arrive(chain="dyn0", spec="chain other: ACL -> IPv4Fwd",
                   t_min_mbps=500.0).validate()

    def test_fault_action_vocabulary(self):
        with pytest.raises(CommandError, match="unknown action"):
            InjectFault(action="lose_cores", target="server0").validate()

    def test_degrade_severity_bounds(self):
        with pytest.raises(CommandError, match="severity"):
            InjectFault(action="degrade_link", target="server0",
                        severity=1.5).validate()


class TestOutcome:
    def test_round_trip(self):
        outcome = CommandOutcome(
            seq=7, kind="depart", status=STATUS_APPLIED,
            digest="abc123",
        )
        assert CommandOutcome.from_dict(outcome.as_dict()) == outcome

    def test_snapshot_payload_survives(self):
        outcome = CommandOutcome(
            seq=0, kind="snapshot", status=STATUS_APPLIED,
            snapshot={"seq": 0, "active": []},
        )
        back = CommandOutcome.from_dict(outcome.as_dict())
        assert back.snapshot == {"seq": 0, "active": []}

    def test_unknown_field_rejected(self):
        with pytest.raises(CommandError, match="unknown fields"):
            CommandOutcome.from_dict(
                {"seq": 1, "kind": "depart", "status": "applied",
                 "extra": 1}
            )

    def test_unknown_status_rejected(self):
        with pytest.raises(CommandError, match="status"):
            CommandOutcome.from_dict(
                {"seq": 1, "kind": "depart", "status": "maybe"}
            )

    def test_http_status_mapping(self):
        assert CommandOutcome.http_status("applied") == 200
        assert CommandOutcome.http_status("rejected") == 409
        assert CommandOutcome.http_status("invalid") == 400
        assert CommandOutcome.http_status("error") == 500
        assert CommandOutcome.http_status("garbage") == 500


class TestSchemas:
    def test_every_kind_has_a_strict_schema(self):
        schemas = command_schemas()["commands"]
        assert set(schemas) == set(MUTATING_KINDS) | {"snapshot"}
        for kind, schema in schemas.items():
            assert schema["additionalProperties"] is False
            assert schema["properties"]["kind"] == {"const": kind}
            assert "kind" in schema["required"]

    def test_outcome_schema_is_strict(self):
        outcome = command_schemas()["outcome"]
        assert outcome["additionalProperties"] is False
        assert set(outcome["required"]) == {"seq", "kind", "status"}
