"""Journal and checkpoint durability semantics."""

import pickle

import pytest

from repro.exceptions import ServeError
from repro.serve.journal import CheckpointStore, Journal


@pytest.fixture()
def journal(tmp_path):
    return Journal(tmp_path / "journal.jsonl")


class TestJournal:
    def test_append_and_replay(self, journal):
        journal.append(1, {"kind": "depart", "chain": "a"})
        journal.append(2, {"kind": "depart", "chain": "b"})
        records = journal.replay()
        assert [r["seq"] for r in records] == [1, 2]
        assert records[0]["command"]["chain"] == "a"

    def test_replay_after_skips_prefix(self, journal):
        for seq in (1, 2, 3):
            journal.append(seq, {"kind": "depart", "chain": f"c{seq}"})
        assert [r["seq"] for r in journal.replay(after=2)] == [3]

    def test_head_seq(self, journal):
        assert journal.head_seq() == 0
        journal.append(1, {"kind": "depart", "chain": "a"})
        assert journal.head_seq() == 1

    def test_missing_file_is_empty(self, journal):
        assert journal.replay() == []

    def test_torn_trailing_line_is_dropped(self, journal):
        journal.append(1, {"kind": "depart", "chain": "a"})
        with open(journal.path, "a") as fh:
            fh.write('{"seq": 2, "comm')  # crash mid-append
        assert [r["seq"] for r in journal.replay()] == [1]

    def test_malformed_interior_record_fails_loudly(self, journal):
        journal.append(1, {"kind": "depart", "chain": "a"})
        with open(journal.path, "a") as fh:
            fh.write("not json\n")
        journal.append(2, {"kind": "depart", "chain": "b"})
        with pytest.raises(ServeError, match="malformed"):
            journal.replay()

    def test_out_of_sequence_fails_loudly(self, journal):
        journal.append(1, {"kind": "depart", "chain": "a"})
        journal.append(5, {"kind": "depart", "chain": "b"})
        with pytest.raises(ServeError, match="out of sequence"):
            journal.replay()


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoint.pkl")
        assert store.load() is None
        store.save({"seq": 4, "core": [1, 2, 3]})
        assert store.load() == {"seq": 4, "core": [1, 2, 3]}

    def test_save_requires_seq(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoint.pkl")
        with pytest.raises(ServeError, match="seq"):
            store.save({"core": None})

    def test_unreadable_checkpoint_fails_loudly(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoint.pkl")
        store.path.write_bytes(b"\x80garbage")
        with pytest.raises(ServeError, match="unreadable"):
            store.load()

    def test_wrong_payload_fails_loudly(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoint.pkl")
        store.path.write_bytes(pickle.dumps(["not", "a", "checkpoint"]))
        with pytest.raises(ServeError, match="seq"):
            store.load()

    def test_crash_mid_save_keeps_previous(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoint.pkl")
        store.save({"seq": 1})
        # a crash between tmp write and rename leaves only the tmp file
        tmp = store.path.with_suffix(store.path.suffix + ".tmp")
        tmp.write_bytes(b"half-written")
        assert store.load() == {"seq": 1}
