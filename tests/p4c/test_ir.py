"""P4 IR tests: headers, parse trees, table DAGs."""

import pytest

from repro.exceptions import P4CompileError
from repro.p4c.ir import (
    HEADER_LIBRARY,
    MatchType,
    P4Table,
    ParseTree,
    TableDAG,
    ethernet_ipv4_tree,
)


class TestHeaders:
    def test_library_has_core_headers(self):
        for name in ("ethernet", "vlan", "ipv4", "tcp", "udp", "nsh"):
            assert name in HEADER_LIBRARY

    def test_header_bits(self):
        assert HEADER_LIBRARY["ethernet"].bits == 112
        assert HEADER_LIBRARY["vlan"].bits == 32
        assert HEADER_LIBRARY["ipv4"].bits == 160

    def test_field_names(self):
        assert "ethertype" in HEADER_LIBRARY["ethernet"].field_names()


class TestParseTree:
    def test_common_tree(self):
        tree = ethernet_ipv4_tree()
        assert tree.next_headers("ethernet") == {"ipv4"}
        assert tree.next_headers("ipv4") == {"tcp", "udp"}

    def test_transition_from_unknown_header(self):
        tree = ParseTree()
        with pytest.raises(P4CompileError):
            tree.add_transition("mystery", "field", 1, "ipv4")

    def test_self_conflict_detected(self):
        tree = ethernet_ipv4_tree()
        with pytest.raises(P4CompileError):
            tree.add_transition("ethernet", "ethertype", 0x0800, "vlan")

    def test_idempotent_transition(self):
        tree = ethernet_ipv4_tree()
        tree.add_transition("ethernet", "ethertype", 0x0800, "ipv4")  # same
        assert tree.next_headers("ethernet") == {"ipv4"}

    def test_copy_independent(self):
        tree = ethernet_ipv4_tree()
        clone = tree.copy()
        clone.add_transition("ethernet", "ethertype", 0x8100, "vlan")
        assert "vlan" not in tree.headers


class TestP4Table:
    def test_sram_footprint(self):
        table = P4Table(name="t", match_type=MatchType.EXACT,
                        size=12000, entry_bits=888)
        assert table.sram_kb == pytest.approx(12000 * 888 / 8 / 1024)
        assert table.tcam_kb == 0.0

    def test_tcam_footprint(self):
        table = P4Table(name="t", match_type=MatchType.TERNARY,
                        size=1024, entry_bits=40)
        assert table.tcam_kb == pytest.approx(5.0)
        assert table.sram_kb == 0.0


class TestTableDAG:
    def _dag(self):
        dag = TableDAG()
        for name in ("a", "b", "c"):
            dag.add_table(P4Table(name=name))
        return dag

    def test_topological_order(self):
        dag = self._dag()
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        assert dag.topological_order() == ["a", "b", "c"]

    def test_depth(self):
        dag = self._dag()
        assert dag.depth() == 1
        dag.add_edge("a", "b")
        assert dag.depth() == 2
        dag.add_edge("b", "c")
        assert dag.depth() == 3

    def test_cycle_detected(self):
        dag = self._dag()
        dag.add_edge("a", "b")
        dag.add_edge("b", "a")
        with pytest.raises(P4CompileError):
            dag.topological_order()

    def test_duplicate_table_rejected(self):
        dag = self._dag()
        with pytest.raises(P4CompileError):
            dag.add_table(P4Table(name="a"))

    def test_edge_to_unknown_table(self):
        dag = self._dag()
        with pytest.raises(P4CompileError):
            dag.add_edge("a", "zz")

    def test_self_edge_rejected(self):
        dag = self._dag()
        with pytest.raises(P4CompileError):
            dag.add_edge("a", "a")

    def test_merge(self):
        dag1 = self._dag()
        dag2 = TableDAG()
        dag2.add_table(P4Table(name="x"))
        dag1.merge(dag2)
        assert len(dag1.tables) == 4
