"""Unified-parser merge tests (§A.2.1)."""

import pytest

from repro.exceptions import ParserMergeConflict
from repro.p4c.ir import ParseTree, ethernet_ipv4_tree
from repro.p4c.parser_merge import merge_parse_trees, reachable_headers


class TestMerge:
    def test_union_of_transitions(self):
        t1 = ethernet_ipv4_tree(l4=False)
        t2 = ParseTree()
        t2.add_transition("ethernet", "ethertype", 0x8100, "vlan")
        unified = merge_parse_trees([t1, t2])
        assert unified.next_headers("ethernet") == {"ipv4", "vlan"}

    def test_identical_trees_merge_cleanly(self):
        unified = merge_parse_trees(
            [ethernet_ipv4_tree(), ethernet_ipv4_tree()]
        )
        assert unified.next_headers("ipv4") == {"tcp", "udp"}

    def test_conflict_rejected(self):
        """Same select value leading to different headers => reject (the
        paper rejects the placement)."""
        t1 = ParseTree()
        t1.add_transition("ethernet", "ethertype", 0x1234, "ipv4")
        t2 = ParseTree()
        t2.add_transition("ethernet", "ethertype", 0x1234, "vlan")
        with pytest.raises(ParserMergeConflict):
            merge_parse_trees([t1, t2])

    def test_different_roots_rejected(self):
        odd = ParseTree(root="ipv4", headers={"ipv4"})
        with pytest.raises(ParserMergeConflict):
            merge_parse_trees([ethernet_ipv4_tree(), odd])

    def test_empty_merge(self):
        unified = merge_parse_trees([])
        assert unified.headers == {"ethernet"}


class TestReachability:
    def test_all_reachable_in_common_tree(self):
        tree = ethernet_ipv4_tree()
        assert reachable_headers(tree) == {"ethernet", "ipv4", "tcp", "udp"}

    def test_orphan_header_unreachable(self):
        tree = ethernet_ipv4_tree()
        tree.headers.add("orphan")
        assert "orphan" not in reachable_headers(tree)
