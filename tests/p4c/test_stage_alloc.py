"""Stage allocator tests: naive vs conservative vs compiler packing."""

import pytest

from repro.exceptions import P4CompileError
from repro.hw.pisa import PISAStageResources
from repro.p4c.ir import MatchType, P4Table, TableDAG
from repro.p4c.stage_alloc import (
    allocate_compiler,
    allocate_conservative,
    allocate_naive,
)


def small_table(name, reads=(), writes=()):
    return P4Table(name=name, size=16, entry_bits=16,
                   reads=frozenset(reads), writes=frozenset(writes))


def big_sram_table(name):
    # ~1.3 MB: fills most of a 1400 KB stage
    return P4Table(name=name, size=12000, entry_bits=888)


class TestCompilerPacking:
    def test_independent_tables_share_stage(self):
        dag = TableDAG()
        for i in range(4):
            dag.add_table(small_table(f"t{i}"))
        alloc = allocate_compiler(dag)
        assert alloc.stage_count == 1

    def test_dependent_tables_split(self):
        dag = TableDAG()
        dag.add_table(small_table("a"))
        dag.add_table(small_table("b"))
        dag.add_edge("a", "b")
        alloc = allocate_compiler(dag)
        assert alloc.stage_count == 2
        assert alloc.stage_of("a") < alloc.stage_of("b")

    def test_slot_limit_splits(self):
        dag = TableDAG()
        for i in range(10):
            dag.add_table(small_table(f"t{i}"))
        alloc = allocate_compiler(dag)  # 8 slots/stage
        assert alloc.stage_count == 2

    def test_sram_limit_splits(self):
        dag = TableDAG()
        dag.add_table(big_sram_table("nat1"))
        dag.add_table(big_sram_table("nat2"))
        alloc = allocate_compiler(dag)
        assert alloc.stage_count == 2

    def test_backfill_interleaves(self):
        """A later-ready small table backfills alongside big tables."""
        dag = TableDAG()
        dag.add_table(small_table("first", writes={"m"}))
        dag.add_table(small_table("second", reads={"m"}))
        dag.add_table(big_sram_table("nat1"))
        dag.add_table(big_sram_table("nat2"))
        alloc = allocate_compiler(dag)
        # nat1/nat2 each need a stage; first/second ride along: 2 stages
        assert alloc.stage_count == 2

    def test_oversized_table_rejected(self):
        dag = TableDAG()
        dag.add_table(P4Table(name="huge", size=100000, entry_bits=888))
        with pytest.raises(P4CompileError):
            allocate_compiler(dag)

    def test_fits_flag(self):
        dag = TableDAG()
        prev = None
        for i in range(5):
            dag.add_table(small_table(f"t{i}"))
            if prev:
                dag.add_edge(prev, f"t{i}")
            prev = f"t{i}"
        assert allocate_compiler(dag, available_stages=5).fits
        assert not allocate_compiler(dag, available_stages=4).fits


class TestConservative:
    def test_groups_never_share(self):
        dag = TableDAG()
        dag.add_table(small_table("a"))
        dag.add_table(small_table("b"))
        alloc = allocate_conservative(dag, nf_groups=[["a"], ["b"]])
        assert alloc.stage_count == 2  # compiler would do it in 1

    def test_within_group_packing_allowed(self):
        dag = TableDAG()
        dag.add_table(small_table("a"))
        dag.add_table(small_table("b"))
        alloc = allocate_conservative(dag, nf_groups=[["a", "b"]])
        assert alloc.stage_count == 1

    def test_uncovered_table_rejected(self):
        dag = TableDAG()
        dag.add_table(small_table("a"))
        with pytest.raises(P4CompileError):
            allocate_conservative(dag, nf_groups=[])

    def test_always_at_least_compiler(self):
        dag = TableDAG()
        for i in range(6):
            dag.add_table(small_table(f"t{i}"))
        compiler = allocate_compiler(dag)
        conservative = allocate_conservative(
            dag, nf_groups=[[f"t{i}"] for i in range(6)]
        )
        assert conservative.stage_count >= compiler.stage_count


class TestNaive:
    def test_one_table_per_stage(self):
        dag = TableDAG()
        for i in range(5):
            dag.add_table(small_table(f"t{i}"))
        alloc = allocate_naive(dag)
        assert alloc.stage_count == 5
        assert all(len(stage) == 1 for stage in alloc.stages)

    def test_explicit_order_respected(self):
        dag = TableDAG()
        dag.add_table(small_table("a"))
        dag.add_table(small_table("b"))
        alloc = allocate_naive(dag, serialized_order=["b", "a"])
        assert alloc.stages == [["b"], ["a"]]


class TestStageOf:
    def test_unallocated_lookup_fails(self):
        dag = TableDAG()
        dag.add_table(small_table("a"))
        alloc = allocate_compiler(dag)
        with pytest.raises(P4CompileError):
            alloc.stage_of("missing")
