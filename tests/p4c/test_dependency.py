"""Table dependency analysis tests."""

from repro.p4c.dependency import (
    chain_dependencies,
    data_dependent,
    exclusive_table_pairs,
    infer_dependencies,
)
from repro.p4c.ir import P4Table, TableDAG


def _table(name, reads=(), writes=()):
    return P4Table(name=name, reads=frozenset(reads),
                   writes=frozenset(writes))


class TestDataDependence:
    def test_read_after_write(self):
        a = _table("a", writes={"ipv4.dst"})
        b = _table("b", reads={"ipv4.dst"})
        assert data_dependent(a, b)

    def test_write_after_write(self):
        a = _table("a", writes={"ipv4.src"})
        b = _table("b", writes={"ipv4.src"})
        assert data_dependent(a, b)

    def test_independent(self):
        a = _table("a", reads={"ipv4.src"}, writes={"meta.x"})
        b = _table("b", reads={"ipv4.dst"}, writes={"meta.y"})
        assert not data_dependent(a, b)

    def test_read_read_independent(self):
        a = _table("a", reads={"ipv4.dst"})
        b = _table("b", reads={"ipv4.dst"})
        assert not data_dependent(a, b)


class TestInference:
    def _dag(self):
        dag = TableDAG()
        dag.add_table(_table("w", writes={"f"}))
        dag.add_table(_table("r", reads={"f"}))
        dag.add_table(_table("i", reads={"g"}))
        return dag

    def test_program_order_edge(self):
        dag = self._dag()
        infer_dependencies(dag, ["w", "r", "i"])
        assert ("w", "r") in dag.edges
        assert ("w", "i") not in dag.edges

    def test_exclusive_pair_suppresses_edge(self):
        dag = self._dag()
        infer_dependencies(dag, ["w", "r", "i"],
                           exclusive_pairs={("w", "r")})
        assert ("w", "r") not in dag.edges

    def test_chain_dependencies_serialize(self):
        dag = self._dag()
        chain_dependencies(dag, ["w", "r", "i"])
        assert dag.depth() == 3


class TestExclusivePairs:
    def test_cross_group_pairs(self):
        pairs = exclusive_table_pairs([{"a", "b"}, {"c"}])
        assert ("a", "c") in pairs
        assert ("b", "c") in pairs
        # within-group pairs are NOT exclusive
        assert ("a", "b") not in pairs

    def test_three_groups(self):
        pairs = exclusive_table_pairs([{"a"}, {"b"}, {"c"}])
        assert len(pairs) == 3

    def test_single_group_no_pairs(self):
        assert exclusive_table_pairs([{"a", "b"}]) == set()
