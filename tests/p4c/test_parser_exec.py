"""Parse-tree interpreter tests: the merged parser runs on real bytes."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.exceptions import P4CompileError
from repro.net.headers import PROTO_TCP, PROTO_UDP, ip_to_int
from repro.net.packet import Packet
from repro.p4c.compiler import PISACompiler
from repro.p4c.ir import ParseTree, ethernet_ipv4_tree
from repro.p4c.parser_exec import execute_parser


class TestBasicExtraction:
    def test_ethernet_ipv4_udp(self):
        tree = ethernet_ipv4_tree()
        pkt = Packet.build(src_ip="10.1.2.3", dst_ip="192.0.2.9",
                           src_port=1234, dst_port=53, proto=PROTO_UDP)
        result = execute_parser(tree, pkt)
        assert result.names() == ["ethernet", "ipv4", "udp"]
        assert result.header("ipv4").fields["src"] == ip_to_int("10.1.2.3")
        assert result.header("udp").fields["dport"] == 53

    def test_tcp_branch(self):
        tree = ethernet_ipv4_tree()
        pkt = Packet.build(proto=PROTO_TCP, src_port=443, dst_port=8443)
        result = execute_parser(tree, pkt)
        assert result.names() == ["ethernet", "ipv4", "tcp"]
        assert result.header("tcp").fields["sport"] == 443

    def test_vlan_requires_transition(self):
        plain = ethernet_ipv4_tree()
        pkt = Packet.build(vlan=42)
        result = execute_parser(plain, pkt)
        # ethertype 0x8100 has no transition: parser stops after ethernet
        assert result.names() == ["ethernet"]

        with_vlan = ethernet_ipv4_tree()
        with_vlan.add_transition("ethernet", "ethertype", 0x8100, "vlan")
        with_vlan.add_transition("vlan", "ethertype", 0x0800, "ipv4")
        result = execute_parser(with_vlan, pkt)
        assert result.names()[:3] == ["ethernet", "vlan", "ipv4"]
        assert result.header("vlan").fields["vid"] == 42

    def test_unknown_l4_stops_at_ipv4(self):
        tree = ethernet_ipv4_tree()
        pkt = Packet.build(proto=89)  # OSPF: no transition
        result = execute_parser(tree, pkt)
        assert result.names() == ["ethernet", "ipv4"]

    def test_consumed_bits_byte_aligned(self):
        tree = ethernet_ipv4_tree()
        pkt = Packet.build(proto=PROTO_UDP)
        result = execute_parser(tree, pkt)
        assert result.consumed_bits % 8 == 0
        assert result.consumed_bits == (14 + 20 + 8) * 8


class TestNSHFraming:
    def test_nsh_consumed_when_tree_knows_it(self):
        tree = ethernet_ipv4_tree()
        tree.headers.add("nsh")
        pkt = Packet.build(src_ip="10.0.0.1")
        pkt.push_nsh(spi=7, si=200)
        result = execute_parser(tree, pkt)
        assert result.names()[0] == "nsh"
        assert result.header("nsh").fields["spi"] == 7
        assert result.header("nsh").fields["si"] == 200
        assert "ipv4" in result.names()

    def test_nsh_ignored_when_tree_does_not_parse_it(self):
        """A parser whose NFs never declared NSH misparses tagged
        traffic — it cannot see the inner IPv4 packet. This is why the
        compiler adds ``nsh`` to the unified parser whenever a chain
        spans platforms."""
        tree = ethernet_ipv4_tree()
        pkt = Packet.build()
        pkt.push_nsh(spi=7, si=200)
        result = execute_parser(tree, pkt)
        assert "ipv4" not in result.names()


class TestUnifiedParser:
    def test_compiled_parser_accepts_all_declared_framings(self):
        """The §A.2.1 merged parser must accept every framing its NFs
        declared: plain IPv4 (ACL/NAT) and VLAN-tagged (Detunnel)."""
        chain = chains_from_spec("chain c: Detunnel -> NAT -> IPv4Fwd")[0]
        result = PISACompiler().compile([(chain.graph,
                                          set(chain.graph.nodes))])
        plain = Packet.build()
        tagged = Packet.build(vlan=5)
        plain_parse = execute_parser(result.parser, plain)
        tagged_parse = execute_parser(result.parser, tagged)
        assert "ipv4" in plain_parse.names()
        assert "vlan" in tagged_parse.names()
        assert "ipv4" in tagged_parse.names()

    def test_spanning_chain_parser_accepts_nsh_return_traffic(self):
        chain = chains_from_spec("chain c: ACL -> Encrypt -> IPv4Fwd")[0]
        switch_ids = {
            nid for nid in chain.graph.nodes
            if chain.graph.nodes[nid].nf_class != "Encrypt"
        }
        result = PISACompiler().compile([(chain.graph, switch_ids)])
        pkt = Packet.build()
        pkt.push_nsh(spi=1, si=254)
        parsed = execute_parser(result.parser, pkt)
        assert parsed.names()[0] == "nsh"
