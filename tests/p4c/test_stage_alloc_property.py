"""Property-based tests on the stage allocators' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.pisa import PISAStageResources
from repro.p4c.ir import MatchType, P4Table, TableDAG
from repro.p4c.stage_alloc import (
    allocate_compiler,
    allocate_conservative,
    allocate_naive,
)


@st.composite
def table_dags(draw):
    """Random DAGs of up to 10 tables with forward-only dependencies."""
    n = draw(st.integers(1, 10))
    dag = TableDAG()
    for i in range(n):
        match_type = draw(st.sampled_from(list(MatchType)))
        size = draw(st.integers(16, 4096))
        entry_bits = draw(st.sampled_from([16, 40, 64, 104]))
        dag.add_table(P4Table(
            name=f"t{i}", match_type=match_type,
            size=size, entry_bits=entry_bits,
        ))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()) and draw(st.booleans()):
                dag.add_edge(f"t{i}", f"t{j}")
    return dag


@settings(max_examples=60, deadline=None)
@given(dag=table_dags())
def test_compiler_places_every_table_once(dag):
    allocation = allocate_compiler(dag)
    placed = [name for stage in allocation.stages for name in stage]
    assert sorted(placed) == sorted(t.name for t in dag.tables)


@settings(max_examples=60, deadline=None)
@given(dag=table_dags())
def test_compiler_respects_dependencies(dag):
    allocation = allocate_compiler(dag)
    for before, after in dag.edges:
        assert allocation.stage_of(before) < allocation.stage_of(after)


@settings(max_examples=60, deadline=None)
@given(dag=table_dags())
def test_compiler_respects_per_stage_resources(dag):
    resources = PISAStageResources()
    allocation = allocate_compiler(dag, resources)
    for stage in allocation.stages:
        assert len(stage) <= resources.table_slots
        sram = sum(dag.table(name).sram_kb for name in stage)
        tcam = sum(dag.table(name).tcam_kb for name in stage)
        assert sram <= resources.sram_kb + 1e-9
        assert tcam <= resources.tcam_kb + 1e-9


@settings(max_examples=60, deadline=None)
@given(dag=table_dags())
def test_compiler_never_below_depth_bound(dag):
    """Stage count is at least the dependency depth (a lower bound) and
    at most the table count (the naive upper bound)."""
    allocation = allocate_compiler(dag)
    assert dag.depth() <= allocation.stage_count <= len(dag.tables)


@settings(max_examples=40, deadline=None)
@given(dag=table_dags())
def test_strategy_ordering(dag):
    """compiler <= conservative(per-table groups) <= naive, always."""
    compiler = allocate_compiler(dag)
    conservative = allocate_conservative(
        dag, nf_groups=[[t.name] for t in dag.tables]
    )
    naive = allocate_naive(dag)
    assert compiler.stage_count <= conservative.stage_count
    assert conservative.stage_count <= naive.stage_count


@settings(max_examples=40, deadline=None)
@given(dag=table_dags(), budget=st.integers(1, 20))
def test_fits_monotone_in_budget(dag, budget):
    tight = allocate_compiler(dag, available_stages=budget)
    loose = allocate_compiler(dag, available_stages=budget + 5)
    if tight.fits:
        assert loose.fits
