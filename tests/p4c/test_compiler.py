"""PISA compiler integration tests, including the paper's calibration
points (10-vs-11 NAT, conservative=14, naive~27, optimization effects)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.exceptions import P4CompileError
from repro.experiments.chains import nat_stress_chain
from repro.hw.pisa import PISASwitch
from repro.p4c.compiler import PISACompiler


def all_on_switch(chain):
    return (chain.graph, set(chain.graph.nodes))


class TestNATCalibration:
    """§5.2's extreme configuration numbers."""

    def test_ten_nats_fit_twelve_stages(self):
        result = PISACompiler().compile([all_on_switch(nat_stress_chain(10))])
        assert result.stage_count == 12
        assert result.fits

    def test_eleven_nats_do_not_fit(self):
        result = PISACompiler().compile([all_on_switch(nat_stress_chain(11))])
        assert not result.fits

    def test_conservative_estimate_is_fourteen(self):
        """Paper: 'it estimated 14 stages, while the compiler could fit
        these into 12'."""
        result = PISACompiler().compile(
            [all_on_switch(nat_stress_chain(10))], strategy="conservative"
        )
        assert result.stage_count == 14

    def test_naive_codegen_wastes_stages(self):
        """Paper: 'without [dependency elimination] the 10-NAT placement
        would have required 27 stages'."""
        result = PISACompiler().compile(
            [all_on_switch(nat_stress_chain(10))], strategy="naive"
        )
        assert result.stage_count >= 24

    def test_ten_plus_one_server_fits(self):
        chain = nat_stress_chain(11)
        order = chain.graph.topological_order()
        nats = [n for n in order
                if chain.graph.nodes[n].nf_class == "NAT"]
        switch_ids = set(chain.graph.nodes) - {nats[-1]}
        result = PISACompiler().compile([(chain.graph, switch_ids)])
        assert result.fits
        assert result.uses_nsh


class TestNSHOptimizations:
    def test_all_switch_chain_has_no_nsh_tables(self):
        """Optimization (a): no NSH for chains entirely on the switch."""
        chain = chains_from_spec("chain c: ACL -> Tunnel -> IPv4Fwd")[0]
        result = PISACompiler().compile([all_on_switch(chain)])
        assert not result.uses_nsh
        names = {t.name for t in result.dag.tables}
        assert not any("nsh" in n for n in names)

    def test_spanning_chain_gets_encap_decap(self):
        chain = chains_from_spec("chain c: ACL -> Encrypt -> IPv4Fwd")[0]
        switch_ids = {
            nid for nid in chain.graph.nodes
            if chain.graph.nodes[nid].nf_class != "Encrypt"
        }
        result = PISACompiler().compile([(chain.graph, switch_ids)])
        assert result.uses_nsh
        names = {t.name for t in result.dag.tables}
        assert any("nsh_encap" in n for n in names)
        assert any("nsh_decap" in n for n in names)

    def test_nsh_tables_cost_at_most_two_extra_tables(self):
        chain_all = chains_from_spec("chain c: ACL -> Tunnel -> IPv4Fwd")[0]
        chain_span = chains_from_spec("chain c: ACL -> Encrypt -> Tunnel "
                                      "-> IPv4Fwd")[0]
        switch_ids = {
            nid for nid in chain_span.graph.nodes
            if chain_span.graph.nodes[nid].nf_class != "Encrypt"
        }
        all_result = PISACompiler().compile([all_on_switch(chain_all)])
        span_result = PISACompiler().compile([(chain_span.graph, switch_ids)])
        assert len(span_result.dag.tables) == len(all_result.dag.tables) + 2


class TestBranchExclusivity:
    def test_parallel_branches_pack(self):
        """Optimization (d): sibling arms share stages."""
        branched = chains_from_spec(
            "chain c: BPF -> [ACL, ACL, ACL] -> IPv4Fwd"
        )[0]
        serial = chains_from_spec(
            "chain c: BPF -> ACL -> ACL -> ACL -> IPv4Fwd"
        )[0]
        b = PISACompiler().compile([all_on_switch(branched)])
        s = PISACompiler().compile([all_on_switch(serial)])
        # three parallel ACLs pack into one layer; serial ones cannot
        # (write-write dependency on drop metadata serializes them)
        assert b.stage_count < s.stage_count

    def test_cross_chain_packing(self):
        """Distinct chains share stages (disjoint aggregates)."""
        c1 = chains_from_spec("chain a: ACL -> IPv4Fwd")[0]
        c2 = chains_from_spec("chain b: ACL -> IPv4Fwd")[0]
        single = PISACompiler().compile([all_on_switch(c1)])
        both = PISACompiler().compile(
            [all_on_switch(c1), all_on_switch(c2)]
        )
        assert both.stage_count == single.stage_count


class TestUnifiedParser:
    def test_parser_covers_all_nf_headers(self):
        chain = chains_from_spec("chain c: Detunnel -> NAT -> IPv4Fwd")[0]
        result = PISACompiler().compile([all_on_switch(chain)])
        assert "vlan" in result.parser.headers
        assert "ipv4" in result.parser.headers

    def test_nsh_header_added_when_spanning(self):
        chain = chains_from_spec("chain c: ACL -> Encrypt -> IPv4Fwd")[0]
        switch_ids = {
            nid for nid in chain.graph.nodes
            if chain.graph.nodes[nid].nf_class != "Encrypt"
        }
        result = PISACompiler().compile([(chain.graph, switch_ids)])
        assert "nsh" in result.parser.headers


class TestMisc:
    def test_empty_assignment(self):
        chain = chains_from_spec("chain c: ACL -> IPv4Fwd")[0]
        result = PISACompiler().compile([(chain.graph, set())])
        assert result.chain_tables["c"] == []
        # steering table only
        assert result.stage_count == 1

    def test_fits_helper(self):
        compiler = PISACompiler(PISASwitch(num_stages=12))
        assert compiler.fits([all_on_switch(nat_stress_chain(10))])
        assert not compiler.fits([all_on_switch(nat_stress_chain(11))])

    def test_unknown_strategy(self):
        chain = chains_from_spec("chain c: ACL -> IPv4Fwd")[0]
        with pytest.raises(P4CompileError):
            PISACompiler().compile([all_on_switch(chain)],
                                   strategy="magic")

    def test_no_p4_impl_rejected(self):
        chain = chains_from_spec("chain c: Encrypt -> IPv4Fwd")[0]
        with pytest.raises(P4CompileError):
            PISACompiler().compile([all_on_switch(chain)])
