"""NF-DAG → pipeline-tree conversion tests (§A.2.2)."""

import pytest

from repro.chain.graph import chains_from_spec
from repro.p4c.pipeline_tree import build_subgroup_dag, dag_to_tree


def graph_of(spec):
    return chains_from_spec(spec)[0].graph


class TestSubgroupDAG:
    def test_sequential_concatenation(self):
        graph = graph_of("ACL -> Tunnel -> IPv4Fwd")
        dag = build_subgroup_dag(graph, list(graph.nodes))
        # one subgroup holding all three sequential NFs
        assert len(dag.nodes) == 1
        (sg,) = dag.nodes.values()
        assert len(sg.nf_node_ids) == 3

    def test_branch_splits_subgroups(self):
        graph = graph_of("BPF -> [NAT, NAT] -> IPv4Fwd")
        dag = build_subgroup_dag(graph, list(graph.nodes))
        # BPF | NAT | NAT | IPv4Fwd
        assert len(dag.nodes) == 4
        assert len(dag.branching_nodes()) == 1
        assert len(dag.merging_nodes()) == 1

    def test_off_switch_gap_bridged(self):
        graph = graph_of("ACL -> Encrypt -> IPv4Fwd")
        switch_ids = [
            nid for nid in graph.nodes
            if graph.nodes[nid].nf_class != "Encrypt"
        ]
        dag = build_subgroup_dag(graph, switch_ids)
        assert len(dag.nodes) == 2
        # edge bridges the server excursion
        assert len(dag.edges) == 1

    def test_empty_switch_set(self):
        graph = graph_of("ACL -> IPv4Fwd")
        dag = build_subgroup_dag(graph, [])
        assert len(dag.nodes) == 0


class TestTreeConversion:
    def test_linear_tree(self):
        graph = graph_of("ACL -> Tunnel -> IPv4Fwd")
        dag = build_subgroup_dag(graph, list(graph.nodes))
        tree = dag_to_tree(dag)
        assert tree is not None
        assert tree.children == []

    def test_merge_reattached_to_common_ancestor(self):
        graph = graph_of("BPF -> [NAT, NAT] -> IPv4Fwd")
        dag = build_subgroup_dag(graph, list(graph.nodes))
        tree = dag_to_tree(dag)
        # root = BPF subgroup; children = two arms + the merge (IPv4Fwd)
        assert len(tree.children) == 3
        merges = [c for c in tree.children if c.is_merge]
        assert len(merges) == 1

    def test_preorder_visits_merge_last(self):
        graph = graph_of("BPF -> [NAT, NAT] -> IPv4Fwd")
        dag = build_subgroup_dag(graph, list(graph.nodes))
        tree = dag_to_tree(dag)
        order = tree.preorder()
        assert order[-1].is_merge

    def test_multi_root_gets_virtual_root(self):
        # chain starts off-switch then branches onto the switch
        graph = graph_of("Dedup -> [ACL, Tunnel] -> Encrypt")
        switch_ids = [
            nid for nid in graph.nodes
            if graph.nodes[nid].nf_class in ("ACL", "Tunnel")
        ]
        dag = build_subgroup_dag(graph, switch_ids)
        tree = dag_to_tree(dag)
        assert tree.subgroup.nf_node_ids == []  # virtual root
        assert len(tree.children) == 2

    def test_empty_dag_returns_none(self):
        graph = graph_of("ACL -> IPv4Fwd")
        dag = build_subgroup_dag(graph, [])
        assert dag_to_tree(dag) is None
