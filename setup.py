"""Legacy shim: lets `python setup.py develop` work in offline
environments whose pip lacks the `wheel` package for PEP 517 editable
installs. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
