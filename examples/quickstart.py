#!/usr/bin/env python3
"""Quickstart: specify chains, place them, generate code, push packets.

Mirrors Figure 1 of the paper end to end:

1. write an NF-chain spec in the dataflow DSL with SLOs;
2. run the Placer (Lemur's heuristic) on the default rack testbed;
3. run the meta-compiler to generate P4 / BESS coordination code;
4. deploy on the simulated rack and trace real packets through it.

Run: ``python examples/quickstart.py``
"""

from repro import (
    MetaCompiler,
    Placer,
    PlacementRequest,
    SLO,
    chains_from_spec,
    gbps,
    topology_for,
)
from repro.sim.runtime import DeployedRack

SPEC = """
# An ISP applies a security chain to customer traffic: filter, encrypt,
# then forward. A second chain rate-limits and NATs guest traffic.
chain secure: ACL(rules=[{'dst_ip': '10.0.0.0/8', 'drop': False}]) \
    -> Encrypt -> IPv4Fwd
chain guest: BPF -> Limiter -> NAT -> IPv4Fwd
"""

SLOS = [
    SLO(t_min=gbps(2), t_max=gbps(100)),   # elastic pipe: >= 2 Gbps
    SLO(t_min=gbps(1), t_max=gbps(5)),     # metered guest traffic
]


def main() -> None:
    chains = chains_from_spec(SPEC, slos=SLOS)
    topology = topology_for("paper-testbed").build()
    placer = Placer(topology=topology)

    report = placer.solve(PlacementRequest(chains=chains))
    placement, seconds = report.placement, report.seconds
    print(f"placement computed in {seconds * 1000:.1f} ms")
    print(placement.describe())
    print()

    meta = MetaCompiler(topology=topology, profiles=placer.profiles)
    artifacts = meta.compile_placement(placement)
    print(artifacts.stats.report())
    print()
    print("generated P4 (first 20 lines):")
    for line in artifacts.p4.program_text.splitlines()[:20]:
        print("   ", line)
    print()

    rack = DeployedRack(topology, artifacts, placer.profiles)
    traces = rack.trace_chains(placement, packets_per_chain=32)
    for name, trace in traces.items():
        print(
            f"chain {name}: {trace.delivered}/{trace.injected} packets "
            f"delivered; NF trail: {' -> '.join(trace.nf_trail)}"
        )


if __name__ == "__main__":
    main()
