#!/usr/bin/env python3
"""Extensions tour: fair burst sharing, Metron steering, failover reserve.

Three future-work items from the paper, implemented and demonstrated:

1. **Max-min fair rates** (§2 footnote 2). Under NIC contention the
   paper's marginal objective is indifferent to *which* chain gets the
   burst headroom; the fair objective equalizes marginal rates.
2. **Metron-style core steering** (§3.2/§4.2). The ToR tags packets to
   cores, freeing the demux core and its per-packet LB cycles.
3. **Proactive failover reserve** (§7). Hold cores back so a SmartNIC
   failure can be absorbed without SLO loss.

Run: ``python examples/fair_sharing_and_failover.py``
"""

from repro import (
    Placer,
    PlacementRequest,
    SLO,
    chains_from_spec,
    gbps,
)
from repro.core.lp import solve_rates
from repro.hw.spec import topology_for

SPEC = """
# Two bursty customers share the 40G server link; per-flow stats only.
chain gold:   ACL -> Monitor -> IPv4Fwd
chain silver: BPF -> Monitor -> IPv4Fwd
"""

SLOS = [
    SLO(t_min=gbps(4), t_max=gbps(100)),
    SLO(t_min=gbps(1), t_max=gbps(100)),
]


def show_rates(label, rates, chains):
    print(f"  {label}:")
    for chain in chains:
        rate = rates[chain.name]
        marginal = rate - chain.slo.t_min
        print(f"    {chain.name:<8} rate {rate / 1000:6.2f} G "
              f"(marginal {marginal / 1000:6.2f} G)")


def main() -> None:
    chains = chains_from_spec(SPEC, slos=SLOS)
    placer = Placer()
    placement = placer.solve(PlacementRequest(chains=chains)).placement
    print("== burst-headroom policy under NIC contention ==")
    marginal = solve_rates(placement.chains, placer.topology,
                           objective="marginal")
    fair = solve_rates(placement.chains, placer.topology,
                       objective="max_min")
    show_rates("revenue-maximal (paper's objective)", marginal.rates, chains)
    show_rates("max-min fair (footnote 2)", fair.rates, chains)
    print()

    print("== Metron-style core steering (CPU-bound canonical chains) ==")
    from repro.experiments.chains import chains_with_delta

    canon = chains_with_delta([1, 2, 3], delta=1.0)
    plain = Placer(topology=topology_for("paper-testbed").build()) \
        .solve(PlacementRequest(chains=canon)).placement
    metron = Placer(topology=topology_for("metron").build()) \
        .solve(PlacementRequest(chains=canon)).placement
    print(f"  demux-core rack : marginal {plain.objective_mbps / 1000:.2f} G")
    print(f"  metron steering : marginal {metron.objective_mbps / 1000:.2f} G"
          f"  (demux core freed, LB cycles gone)")
    print()

    print("== proactive failover reserve (§7) ==")
    nic_topo = topology_for("paper-smartnic").build()
    nic_placer = Placer(topology=nic_topo)
    crypto = chains_from_spec(
        "chain sync: BPF -> FastEncrypt -> IPv4Fwd",
        slos=[SLO(t_min=gbps(2), t_max=gbps(39))],
    )
    reserved = nic_placer.solve(PlacementRequest(
        chains=crypto, reserve_cores=4,
    )).placement
    used = reserved.total_cores().get("server0", 0)
    print(f"  with 4 cores reserved: feasible={reserved.feasible}; "
          f"ChaCha rides the SmartNIC, server cores used: {used} "
          f"(reserve untouched)")
    degraded = nic_placer.solve(PlacementRequest(
        chains=crypto, failed_devices=("agilio0",),
    )).placement
    print(f"  after SmartNIC failure: feasible={degraded.feasible}, "
          f"ChaCha falls back to "
          f"{degraded.total_cores().get('server0', 0)} server cores, "
          f"rate {degraded.rates['sync'] / 1000:.2f} G "
          f"(SLO t_min {crypto[0].slo.t_min / 1000:.1f} G still met)")


if __name__ == "__main__":
    main()
