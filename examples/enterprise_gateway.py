#!/usr/bin/env python3
"""Enterprise border gateway: branching chains and generated artifacts.

Shows the DSL's conditional branching (the paper's
``ACL -> [{'vlan_tag': 0x1, Encryption}] -> Forward`` example), SmartNIC
offload of ChaCha, and dumps every artifact family the meta-compiler
emits: the unified P4 program, standalone extended-P4 NF sources, the BESS
script, and the eBPF dispatcher C.

Run: ``python examples/enterprise_gateway.py``
"""

from repro import (
    MetaCompiler,
    Placer,
    PlacementRequest,
    SLO,
    chains_from_spec,
    gbps,
    topology_for,
)

SPEC = """
$ACL_RULES = [{'src_ip': '192.0.2.0/24', 'drop': True}, \
              {'dst_ip': '10.0.0.0/8', 'drop': False}]
acl0 = ACL(rules=$ACL_RULES)

# Traffic tagged VLAN 0x1 (site-to-site) gets encrypted; the rest passes.
chain border: acl0 -> [{'vlan_tag': 0x1, Encrypt}] -> IPv4Fwd

# Bulk file sync offloads ChaCha to the SmartNIC when available.
chain filesync: BPF -> FastEncrypt -> IPv4Fwd
"""


def main() -> None:
    topology = topology_for("paper-smartnic").build()
    placer = Placer(topology=topology)
    chains = chains_from_spec(SPEC, slos=[
        SLO(t_min=gbps(1), t_max=gbps(40)),
        SLO(t_min=gbps(5), t_max=gbps(40)),
    ])

    placement = placer.solve(PlacementRequest(chains=chains)).placement
    print(placement.describe())
    print()

    meta = MetaCompiler(topology=topology, profiles=placer.profiles)
    artifacts = meta.compile_placement(placement)

    print("== service paths (NSH SPI/SI assignment) ==")
    for path in artifacts.service_paths:
        hops = " | ".join(
            f"{hop.device}[si={hop.entry_si}]" for hop in path.hops
        )
        print(f"  spi={path.spi} ({path.chain_name}, "
              f"{path.fraction:.0%} of traffic): {hops}")
    print()

    if artifacts.p4:
        print(f"== unified P4 program: {artifacts.p4.total_lines} lines, "
              f"{artifacts.p4.compile_result.stage_count} stages ==")
        print("\n".join(artifacts.p4.program_text.splitlines()[:12]))
        print("    ...")
        some_nf = next(iter(artifacts.p4.nf_sources))
        print(f"== standalone extended-P4 source for {some_nf} ==")
        print(artifacts.p4.nf_sources[some_nf])

    for server, script in artifacts.bess.items():
        print(f"== generated BESS script for {server} ==")
        print(script.render())

    for nic, (program, _specs) in artifacts.ebpf.items():
        print(f"== eBPF program for {nic}: {program.instructions} "
              f"instructions, {program.stack_bytes} B stack, "
              f"{program.unrolled_loops} loops unrolled ==")
        print("\n".join(program.sections[0].source.splitlines()[:10]))

    print()
    print(artifacts.stats.report())


if __name__ == "__main__":
    main()
