#!/usr/bin/env python3
"""ISP peering-PoP scenario: mixed SLO classes, scheme comparison, failover.

The setting the paper's introduction motivates: a rack at an ISP point of
presence applies per-customer NF chains with contractual SLOs (Table 1's
vocabulary — virtual pipes for enterprises, elastic pipes for residential
aggregates, bulk for scavenger traffic). This example:

* places three customer chains with different SLO classes;
* compares Lemur against HW-/SW-Preferred and Greedy on feasibility and
  marginal throughput (the ISP's revenue metric);
* measures the placement on the simulated testbed;
* exercises §7's failure story by re-placing after the SmartNIC fails.

Run: ``python examples/isp_peering_pop.py``
"""

from repro import (
    Placer,
    PlacementRequest,
    chains_from_spec,
    gbps,
    topology_for,
)
from repro.chain.slo import bulk, elastic_pipe, virtual_pipe
from repro.net.flows import TrafficAggregate
from repro.sim.testbed import TestbedSimulator

SPEC = """
# Enterprise customer: firewalled, encrypted transit (virtual pipe).
chain enterprise: ACL -> Encrypt -> IPv4Fwd

# Residential aggregate: CGNAT + per-flow stats (elastic pipe).
chain residential: BPF -> NAT -> Monitor -> IPv4Fwd

# Scavenger/CDN fill traffic: dedup + rate cap (bulk).
chain scavenger: Dedup -> Limiter -> IPv4Fwd
"""

SLOS = [
    virtual_pipe(gbps(4)),            # exactly 4 Gbps, contractual
    elastic_pipe(gbps(2), gbps(20)),  # >= 2 Gbps, bursts to 20
    bulk(),                           # best effort
]

AGGREGATES = [
    TrafficAggregate(name="enterprise", src_prefix="203.0.113.0/24"),
    TrafficAggregate(name="residential", src_prefix="100.64.0.0/10"),
    TrafficAggregate(name="scavenger", src_prefix="198.51.100.0/24"),
]


def main() -> None:
    chains = chains_from_spec(SPEC, slos=SLOS)
    for chain, aggregate in zip(chains, AGGREGATES):
        chain.aggregate = aggregate

    topology = topology_for("paper-smartnic").build()
    placer = Placer(topology=topology)

    print("== scheme comparison (marginal throughput = ISP revenue) ==")
    for strategy in ("lemur", "hw-preferred", "sw-preferred", "greedy"):
        placement = placer.solve(PlacementRequest(
            chains=chains, strategy=strategy,
        )).placement
        if placement.feasible:
            print(
                f"  {strategy:<13} feasible, marginal "
                f"{placement.objective_mbps / 1000:.2f} Gbps"
            )
        else:
            print(f"  {strategy:<13} INFEASIBLE ({placement.infeasible_reason})")
    print()

    placement = placer.solve(PlacementRequest(chains=chains)).placement
    print("== Lemur placement ==")
    print(placement.describe())
    print()

    sim = TestbedSimulator(topology=topology, profiles=placer.profiles)
    report = sim.run(placement)
    print("== measured on the simulated testbed ==")
    for m in report.measurements:
        status = "OK " if m.slo_met else "VIOLATED"
        print(
            f"  {m.chain_name:<12} achieved {m.achieved_mbps / 1000:6.2f} G "
            f"(predicted {m.predicted_mbps / 1000:6.2f} G, "
            f"t_min {m.t_min_mbps / 1000:5.2f} G) SLO {status}"
        )
    print()

    print("== SmartNIC failure: reactive re-placement (§7) ==")
    fallback = placer.solve(PlacementRequest(
        chains=chains, failed_devices=("agilio0",),
    )).placement
    print(
        f"  fallback feasible={fallback.feasible}, marginal "
        f"{fallback.objective_mbps / 1000:.2f} Gbps "
        f"(was {placement.objective_mbps / 1000:.2f})"
    )


if __name__ == "__main__":
    main()
