#!/usr/bin/env python3
"""Regenerate a miniature Figure-2 panel at the terminal.

Sweeps δ (t_min = δ x base rate, §5.1) for canonical chains {1,2,3} and
prints, per scheme: feasibility, aggregate t_min, predicted (◇) and
measured throughput, and marginal throughput — the same series the
paper's bars encode. The full sweeps live in ``benchmarks/``.

Run: ``python examples/delta_sweep_panel.py``
"""

from repro.experiments.runner import run_delta_sweep
from repro.experiments.schemes import SCHEMES


def main() -> None:
    # Optimal is excluded here to keep the example snappy; the benchmark
    # harness runs it.
    schemes = {k: v for k, v in SCHEMES.items() if k != "Optimal"}
    sweep = run_delta_sweep(
        chain_indices=[1, 2, 3],
        deltas=(0.5, 1.0, 1.5, 2.0),
        schemes=schemes,
    )
    print(sweep.print_table())
    print()
    for scheme in schemes:
        print(
            f"{scheme:<14} feasible at "
            f"{sweep.feasibility_fraction(scheme):.0%} of δ values"
        )
    print(
        f"\nLemur's max marginal-throughput lead over the best "
        f"competitor: {sweep.max_marginal_lead_mbps() / 1000:.2f} Gbps"
    )


if __name__ == "__main__":
    main()
